// Smoke tests for the `trienum` CLI driver: shells out to the built binary
// (path injected by tests/CMakeLists.txt as TRIENUM_CLI_PATH) and checks
// `list` against the registry and `count` against the host reference.
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "core/reference.h"
#include "graph/generators.h"

namespace trienum {
namespace {

// Runs `TRIENUM_CLI_PATH <args>`, captures stdout, and returns it; fails the
// test if the process does not exit cleanly with `expected_status`.
std::string RunCli(const std::string& args, int expected_status = 0) {
  // Quote the binary path: the build directory may contain spaces.
  std::string cmd = "\"" TRIENUM_CLI_PATH "\" " + args + " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  if (pipe == nullptr) return "";
  std::string out;
  std::array<char, 4096> buf;
  std::size_t n;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    out.append(buf.data(), n);
  }
  int rc = pclose(pipe);
  EXPECT_TRUE(WIFEXITED(rc)) << cmd;
  EXPECT_EQ(WEXITSTATUS(rc), expected_status) << cmd << "\noutput:\n" << out;
  return out;
}

// Extracts the value of a "key = value" report line.
std::string ReportValue(const std::string& out, const std::string& key) {
  std::string needle = key + " = ";
  std::size_t pos = out.find(needle);
  if (pos == std::string::npos) {
    ADD_FAILURE() << "no '" << needle << "' line in:\n" << out;
    return "";
  }
  std::size_t start = pos + needle.size();
  std::size_t end = out.find('\n', start);
  return out.substr(start, end - start);
}

TEST(CliSmoke, ListPrintsEveryRegisteredAlgorithm) {
  std::string out = RunCli("list");
  for (const core::AlgorithmInfo& a : core::AllAlgorithms()) {
    EXPECT_NE(out.find(a.name), std::string::npos)
        << "missing '" << a.name << "' in:\n" << out;
  }
  EXPECT_NE(out.find("reference"), std::string::npos);
}

TEST(CliSmoke, CountMatchesReferenceOnRmat) {
  const std::string spec = "rmat:scale=8,m=2000,seed=11";
  std::uint64_t expected =
      core::CountTrianglesHost(graph::Rmat(8, 2000, 0.45, 0.22, 0.22, 11));
  ASSERT_GT(expected, 0u) << "degenerate fixture: fixture graph has no triangles";

  std::string em_out = RunCli(
      "count --algo=ps-cache-aware --graph=" + spec +
      " --memory=2048 --block=32 --seed=7");
  EXPECT_EQ(ReportValue(em_out, "triangles"), std::to_string(expected));

  std::string ref_out = RunCli("count --algo=reference --graph=" + spec);
  EXPECT_EQ(ReportValue(ref_out, "triangles"), std::to_string(expected));
}

TEST(CliSmoke, CountReportsIoAndPredictedBound) {
  std::string out = RunCli(
      "count --algo=ps-cache-oblivious --graph=clique:k=24"
      " --memory=1024 --block=16");
  EXPECT_EQ(ReportValue(out, "triangles"), "2024");  // C(24,3)
  EXPECT_GT(std::stoull(ReportValue(out, "block_ios")), 0u);
  EXPECT_GT(std::stod(ReportValue(out, "predicted_bound")), 0.0);
  EXPECT_GT(std::stod(ReportValue(out, "lower_bound")), 0.0);
}

TEST(CliSmoke, EnumeratePrintsTriangles) {
  std::string out = RunCli(
      "enumerate --algo=ps-deterministic --graph=cycle:n=3"
      " --memory=1024 --block=16");
  EXPECT_NE(out.find("triangle 0 1 2"), std::string::npos) << out;
  EXPECT_EQ(ReportValue(out, "triangles"), "1");
}

TEST(CliSmoke, UnknownAlgorithmFails) {
  RunCli("count --algo=definitely-not-an-algo --graph=clique:k=5",
         /*expected_status=*/2);
}

TEST(CliSmoke, FileBackendMatchesMemoryBackend) {
  // End-to-end differential: same run on both storage backends must report
  // the same triangles AND the same simulated block I/Os (the IoStats
  // backend-independence guarantee), while only the file backend moves real
  // bytes.
  const std::string common =
      "count --algo=ps-cache-aware --graph=rmat:scale=8,m=2000,seed=11"
      " --memory=2048 --block=32 --seed=7";
  std::string mem = RunCli(common + " --backend=memory");
  std::string file = RunCli(common + " --backend=file");
  EXPECT_EQ(ReportValue(mem, "backend"), "memory");
  EXPECT_EQ(ReportValue(file, "backend"), "file");
  EXPECT_EQ(ReportValue(mem, "triangles"), ReportValue(file, "triangles"));
  EXPECT_EQ(ReportValue(mem, "block_reads"), ReportValue(file, "block_reads"));
  EXPECT_EQ(ReportValue(mem, "block_writes"), ReportValue(file, "block_writes"));
  EXPECT_EQ(ReportValue(mem, "real_bytes_read"), "0");
  EXPECT_GT(std::stoull(ReportValue(file, "real_bytes_read")), 0u);
}

TEST(CliSmoke, MmapBackendMatchesMemoryBackend) {
  // Same differential for the third backend: identical triangles and
  // simulated block I/Os. The mapping is the direct view (counting-only
  // cache), so like the memory backend it moves no bytes through the
  // ReadWords/WriteWords API.
  const std::string common =
      "count --algo=ps-cache-aware --graph=rmat:scale=8,m=2000,seed=11"
      " --memory=2048 --block=32 --seed=7";
  std::string mem = RunCli(common + " --backend=memory");
  std::string mmap = RunCli(common + " --backend=mmap");
  EXPECT_EQ(ReportValue(mmap, "backend"), "mmap");
  EXPECT_EQ(ReportValue(mem, "triangles"), ReportValue(mmap, "triangles"));
  EXPECT_EQ(ReportValue(mem, "block_reads"), ReportValue(mmap, "block_reads"));
  EXPECT_EQ(ReportValue(mem, "block_writes"),
            ReportValue(mmap, "block_writes"));
}

TEST(CliSmoke, InvalidBackendFails) {
  RunCli("count --algo=ps-cache-aware --graph=clique:k=5 --backend=floppy",
         /*expected_status=*/2);
}

TEST(CliSmoke, NonexistentTempDirFails) {
  RunCli(
      "count --algo=ps-cache-aware --graph=clique:k=5 --backend=file"
      " --temp-dir=/nonexistent-trienum-dir",
      /*expected_status=*/2);
}

TEST(CliSmoke, ThreadsFlagIsEchoedAndLeavesResultsAndIoUnchanged) {
  // --threads must change wall clock at most: same triangles, same counted
  // block I/Os, same internal work as the serial run (the par subsystem's
  // IoStats-invariance contract, end to end through the CLI).
  const std::string common =
      "count --algo=mgt --graph=rmat:scale=8,m=2000,seed=11"
      " --memory=2048 --block=32 --seed=7";
  std::string serial = RunCli(common + " --threads=1");
  std::string par = RunCli(common + " --threads=7");
  EXPECT_EQ(ReportValue(serial, "threads"), "1");
  EXPECT_EQ(ReportValue(par, "threads"), "7");
  EXPECT_EQ(ReportValue(par, "triangles"), ReportValue(serial, "triangles"));
  EXPECT_EQ(ReportValue(par, "block_reads"), ReportValue(serial, "block_reads"));
  EXPECT_EQ(ReportValue(par, "block_writes"),
            ReportValue(serial, "block_writes"));
  EXPECT_EQ(ReportValue(par, "block_ios"), ReportValue(serial, "block_ios"));
  EXPECT_EQ(ReportValue(par, "internal_work"),
            ReportValue(serial, "internal_work"));
}

TEST(CliSmoke, ThreadsZeroResolvesToHardwareConcurrency) {
  std::string out = RunCli(
      "count --algo=ps-cache-aware --graph=clique:k=8"
      " --memory=1024 --block=16 --threads=0");
  // 0 = all hardware cores: the echoed value is the resolved count, >= 1.
  EXPECT_GE(std::stoull(ReportValue(out, "threads")), 1u);
  EXPECT_EQ(ReportValue(out, "triangles"), "56");  // C(8,3)
}

TEST(CliSmoke, ThreadsDefaultIsOne) {
  std::string out = RunCli(
      "count --algo=ps-cache-aware --graph=clique:k=5 --memory=1024 --block=16");
  EXPECT_EQ(ReportValue(out, "threads"), "1");
}

TEST(CliSmoke, InvalidThreadsFails) {
  RunCli("count --algo=mgt --graph=clique:k=5 --threads=lots",
         /*expected_status=*/2);
}

TEST(CliSmoke, KernelsFlagIsEchoedAndLeavesResultsAndIoUnchanged) {
  // --kernels is a pure performance knob: forcing the scalar reference path
  // must reproduce the default (auto) run's triangles, block I/Os, and
  // internal work exactly, and each run echoes the variant it resolved to.
  const std::string common =
      "count --algo=mgt --graph=rmat:scale=8,m=2000,seed=11"
      " --memory=2048 --block=32 --seed=7";
  std::string def = RunCli(common);
  std::string scalar = RunCli(common + " --kernels=scalar");
  EXPECT_EQ(ReportValue(scalar, "kernels"), "scalar");
  // auto resolves to whichever vectorized variant this build/CPU supports.
  const std::string resolved = ReportValue(def, "kernels");
  EXPECT_TRUE(resolved == "swar" || resolved == "avx2") << resolved;
  for (const char* key : {"triangles", "block_reads", "block_writes",
                          "block_ios", "internal_work"}) {
    EXPECT_EQ(ReportValue(scalar, key), ReportValue(def, key)) << key;
  }
  // A forced avx2 request degrades to swar when unavailable — never an error.
  std::string forced = RunCli(common + " --kernels=avx2");
  const std::string got = ReportValue(forced, "kernels");
  EXPECT_TRUE(got == "avx2" || got == "swar") << got;
  EXPECT_EQ(ReportValue(forced, "triangles"), ReportValue(def, "triangles"));
}

TEST(CliSmoke, InvalidKernelsFails) {
  RunCli("count --algo=mgt --graph=clique:k=5 --kernels=sse9",
         /*expected_status=*/2);
}

TEST(CliSmoke, SeedIsEchoedInTheReport) {
  std::string out = RunCli(
      "count --algo=ps-cache-aware --graph=clique:k=6 --memory=1024"
      " --block=16 --seed=424242");
  EXPECT_EQ(ReportValue(out, "seed"), "424242");
  // Default master seed when --seed is absent.
  std::string def = RunCli(
      "count --algo=ps-cache-aware --graph=clique:k=6 --memory=1024 --block=16");
  EXPECT_EQ(ReportValue(def, "seed"), "2014");
}

TEST(CliSmoke, UnknownOptionFailsWithUsageHint) {
  RunCli("count --algo=mgt --graph=clique:k=5 --definitely-bogus=1",
         /*expected_status=*/2);
  // --script is a `trienum query` option; count must still reject it.
  RunCli("count --algo=mgt --graph=clique:k=5 --script=/dev/null",
         /*expected_status=*/2);
}

// Writes `content` to a unique temp file and returns its path; the file is
// removed when the returned guard dies.
struct TempScript {
  std::string path;
  explicit TempScript(const std::string& content) {
    char tmpl[] = "/tmp/trienum-test-script-XXXXXX";
    int fd = mkstemp(tmpl);
    EXPECT_GE(fd, 0);
    path = tmpl;
    EXPECT_EQ(write(fd, content.data(), content.size()),
              static_cast<ssize_t>(content.size()));
    close(fd);
  }
  ~TempScript() { unlink(path.c_str()); }
};

TEST(CliPrefetch, DepthIsEchoedAndLeavesCountedStatsBitIdentical) {
  // The prefetch contract end to end through the CLI: read-ahead changes
  // only the prefetch_* lines — triangles and every counted I/O number
  // match the depth-0 run exactly, and the header echoes the depth.
  const std::string common =
      "count --algo=mgt --graph=rmat:scale=8,m=2000,seed=11"
      " --memory=2048 --block=32 --seed=7 --backend=file";
  std::string off = RunCli(common);
  std::string on = RunCli(common + " --prefetch=8 --prefetch-threads=2");
  EXPECT_EQ(ReportValue(off, "prefetch"), "0");
  EXPECT_EQ(ReportValue(on, "prefetch"), "8");
  for (const char* key : {"triangles", "block_reads", "block_writes",
                          "block_ios", "internal_work"}) {
    EXPECT_EQ(ReportValue(on, key), ReportValue(off, key)) << key;
  }
  EXPECT_EQ(ReportValue(off, "prefetch_issued"), "0");
}

TEST(CliPrefetch, DepthZeroAndMemoryResidentBackendsStayInert) {
  // The knob must be harmless where there is nothing to stage: on the
  // memory/mmap backends the cache runs counting-only and no pool is built.
  std::string out = RunCli(
      "count --algo=ps-cache-aware --graph=clique:k=8 --memory=1024"
      " --block=16 --backend=mmap --prefetch=8");
  EXPECT_EQ(ReportValue(out, "prefetch"), "8");
  EXPECT_EQ(ReportValue(out, "prefetch_issued"), "0");
  EXPECT_EQ(ReportValue(out, "triangles"), "56");  // C(8,3)
}

TEST(CliPrefetch, QueryReportsCarryThePrefetchHeader) {
  TempScript script("count --algo=mgt\n");
  std::string out = RunCli(
      "query --graph=clique:k=8 --memory=1024 --block=16 --backend=file"
      " --prefetch=4 --script=" + script.path);
  EXPECT_EQ(ReportValue(out, "prefetch"), "4");
  EXPECT_EQ(ReportValue(out, "triangles"), "56");
}

TEST(CliPrefetch, MalformedPrefetchFlagsFail) {
  RunCli("count --graph=clique:k=5 --prefetch=deep", /*expected_status=*/2);
  RunCli("count --graph=clique:k=5 --prefetch=-1", /*expected_status=*/2);
  RunCli("count --graph=clique:k=5 --prefetch-threads=many",
         /*expected_status=*/2);
  RunCli("count --graph=clique:k=5 --prefetch=4 --prefetch-threads=0",
         /*expected_status=*/2);
}

TEST(CliFaults, TransientScheduleLeavesTheReportBitIdentical) {
  // The recovery contract end to end through the CLI: a seeded transient
  // fault schedule changes only the recovery_* lines — triangles and every
  // counted I/O number match the clean run exactly.
  const std::string common =
      "count --algo=ps-cache-aware --graph=rmat:scale=8,m=2000,seed=11"
      " --memory=2048 --block=32 --seed=7";
  std::string clean = RunCli(common);
  std::string faulted = RunCli(
      common + " \"--faults=read:eio:every=7;write:short:every=9\"");
  for (const char* key : {"triangles", "block_reads", "block_writes",
                          "block_ios", "internal_work"}) {
    EXPECT_EQ(ReportValue(faulted, key), ReportValue(clean, key)) << key;
  }
  EXPECT_EQ(ReportValue(clean, "recovery_retries"), "0");
  EXPECT_GT(std::stoull(ReportValue(faulted, "recovery_retries")), 0u);
  EXPECT_EQ(ReportValue(faulted, "recovery_retries"),
            ReportValue(faulted, "recovery_faults_injected"));
}

TEST(CliFaults, ChecksumsDetectFlipsOnTheFileBackend) {
  const std::string common =
      "count --algo=ps-cache-aware --graph=rmat:scale=8,m=2000,seed=11"
      " --memory=2048 --block=32 --seed=7 --backend=file";
  std::string clean = RunCli(common);
  std::string sums = RunCli(common +
                            " --verify-checksums --faults=read:flip:every=5");
  EXPECT_EQ(ReportValue(sums, "triangles"), ReportValue(clean, "triangles"));
  EXPECT_EQ(ReportValue(sums, "block_ios"), ReportValue(clean, "block_ios"));
  EXPECT_GT(std::stoull(ReportValue(sums, "recovery_checksum_failures")), 0u);
}

TEST(CliFaults, PermanentFaultDiesCleanly) {
  RunCli(
      "count --algo=mgt --graph=clique:k=16 --memory=1024 --block=16"
      " --faults=read:eio:at=10,perm=1",
      /*expected_status=*/2);
}

TEST(CliFaults, BadFaultSpecOrRetryFlagsFail) {
  RunCli("count --graph=clique:k=5 --faults=bogus:eio:every=3",
         /*expected_status=*/2);
  RunCli("count --graph=clique:k=5 --faults=read:eio",  // no trigger
         /*expected_status=*/2);
  RunCli("count --graph=clique:k=5 --io-retries=none", /*expected_status=*/2);
  RunCli("count --graph=clique:k=5 --verify-checksums=maybe",
         /*expected_status=*/2);
}

TEST(CliFaults, MkstempFailureDiesCleanlyInsteadOfAborting) {
  // /proc/sys passes the is_directory pre-check but mkstemp cannot create a
  // file there (even as root), so this exercises the FileBackend's latched
  // init_status path: a clean diagnostic and exit 2, not an abort.
  RunCli(
      "count --algo=ps-cache-aware --graph=clique:k=5 --backend=file"
      " --temp-dir=/proc/sys",
      /*expected_status=*/2);
}

TEST(CliQuery, ScriptAnswersEveryQueryWithPerQueryIo) {
  TempScript script(
      "# comment line\n"
      "count --algo=mgt\n"
      "\n"
      "count --algo=ps-cache-aware --seed=77\n"
      "enumerate --algo=ps-deterministic --limit=2\n");
  std::string out = RunCli("query --graph=clique:k=8 --memory=1024 --block=16"
                           " --script=" + script.path);
  EXPECT_EQ(ReportValue(out, "queries"), "3");
  // Every query reports its own measurement block; all count C(8,3) = 56.
  std::size_t pos = 0;
  int blocks = 0;
  while ((pos = out.find("triangles = ", pos)) != std::string::npos) {
    ++blocks;
    pos += 1;
  }
  EXPECT_EQ(blocks, 3);
  EXPECT_EQ(ReportValue(out, "triangles"), "56");
  EXPECT_NE(out.find("query = 3"), std::string::npos) << out;
  EXPECT_NE(out.find("kind = enumerate"), std::string::npos) << out;
  EXPECT_NE(out.find("triangle 0 1 2"), std::string::npos) << out;
  // Per-query seed echo: the second query overrides the master seed.
  EXPECT_NE(out.find("seed = 77"), std::string::npos) << out;
}

TEST(CliQuery, RepeatedQueryReportsIdenticalIoToItsFirstRun) {
  // The session-reuse invariant through the CLI: the same query run twice in
  // one batch must report bit-identical I/O counters both times.
  TempScript script(
      "count --algo=ps-cache-aware\n"
      "count --algo=mgt\n"
      "count --algo=ps-cache-aware\n");
  std::string out = RunCli(
      "query --graph=rmat:scale=7,m=900,seed=5 --memory=2048 --block=32"
      " --script=" + script.path);
  std::size_t q1 = out.find("query = 1");
  std::size_t q2 = out.find("query = 2");
  std::size_t q3 = out.find("query = 3");
  ASSERT_NE(q1, std::string::npos);
  ASSERT_NE(q3, std::string::npos);
  std::string first = out.substr(q1, q2 - q1);
  std::string third = out.substr(q3);
  for (const char* key : {"triangles", "block_reads", "block_writes",
                          "block_ios", "internal_work", "device_peak_words"}) {
    EXPECT_EQ(ReportValue(first, key), ReportValue(third, key)) << key;
  }
}

TEST(CliQuery, PerVertexAndPerEdgeKindsWork) {
  TempScript script(
      "per-vertex --limit=3\n"
      "per-edge --limit=3\n");
  std::string out = RunCli("query --graph=cycle:n=3 --memory=1024 --block=16"
                           " --script=" + script.path);
  // One triangle: every vertex in it once, every edge supporting it once.
  EXPECT_NE(out.find("vertex 0 1"), std::string::npos) << out;
  EXPECT_NE(out.find("edge-support 0 1 1"), std::string::npos) << out;
  EXPECT_EQ(ReportValue(out, "triangles"), "1");
}

// ---------------------------------------------------------------------------
// Observability surface: version, --report=json, --trace, --metrics-json.

// Minimal structural JSON validation: balanced braces/brackets outside
// strings, and the document starts/ends as one object. The obs unit tests
// and the CI smoke step run real parsers; this keeps the smoke test
// dependency-free.
void ExpectBalancedJsonObject(const std::string& doc) {
  ASSERT_FALSE(doc.empty());
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char ch : doc) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (ch == '\\') escaped = true;
      if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  std::size_t first = doc.find_first_not_of(" \t\r\n");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(doc[first], '{');
}

// Reads a whole file; fails the test if it does not exist.
std::string Slurp(const std::string& path) {
  FILE* f = fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return "";
  std::string out;
  std::array<char, 4096> buf;
  std::size_t n;
  while ((n = fread(buf.data(), 1, buf.size(), f)) > 0) out.append(buf.data(), n);
  fclose(f);
  return out;
}

TEST(CliObs, VersionReportsBuildProvenance) {
  std::string out = RunCli("version");
  EXPECT_FALSE(ReportValue(out, "compiler").empty());
  EXPECT_FALSE(ReportValue(out, "build_type").empty());
  EXPECT_NE(out.find("kernels_compiled = "), std::string::npos) << out;

  std::string json = RunCli("version --report=json");
  ExpectBalancedJsonObject(json);
  EXPECT_NE(json.find("\"build_info\""), std::string::npos);
  EXPECT_NE(json.find("\"kernels_active\""), std::string::npos);
}

TEST(CliObs, ReportJsonCarriesTheSameNumbersAsText) {
  const std::string common =
      "count --algo=mgt --graph=rmat:scale=8,m=2000,seed=11"
      " --memory=2048 --block=32 --seed=7";
  std::string text = RunCli(common);
  std::string json = RunCli(common + " --report=json");
  ExpectBalancedJsonObject(json);
  // The JSON document carries the same triangle count and I/O totals.
  EXPECT_NE(json.find("\"triangles\":" + ReportValue(text, "triangles")),
            std::string::npos) << json;
  EXPECT_NE(json.find("\"block_reads\":" + ReportValue(text, "block_reads")),
            std::string::npos) << json;
  EXPECT_NE(json.find("\"command\":\"count\""), std::string::npos);
}

TEST(CliObs, TraceAndMetricsFilesAreWrittenAndLeaveResultsUnchanged) {
  char dir_tmpl[] = "/tmp/trienum-test-obs-XXXXXX";
  ASSERT_NE(mkdtemp(dir_tmpl), nullptr);
  const std::string dir = dir_tmpl;
  const std::string trace_path = dir + "/t.json";
  const std::string metrics_path = dir + "/m.json";
  const std::string common =
      "count --algo=mgt --backend=file --graph=rmat:scale=8,m=2000,seed=11"
      " --memory=2048 --block=32 --seed=7";

  std::string plain = RunCli(common);
  std::string traced = RunCli(common + " --trace=" + trace_path +
                              " --metrics-json=" + metrics_path);
  // Tracing is bit-invisible to the report.
  for (const char* key : {"triangles", "block_reads", "block_writes",
                          "block_ios", "internal_work"}) {
    EXPECT_EQ(ReportValue(traced, key), ReportValue(plain, key)) << key;
  }
  // The traced report additionally carries the phase table.
  EXPECT_EQ(plain.find("phase "), std::string::npos);
  EXPECT_NE(traced.find("phase pivot.cone_scan"), std::string::npos) << traced;

  std::string trace_doc = Slurp(trace_path);
  ExpectBalancedJsonObject(trace_doc);
  EXPECT_NE(trace_doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_doc.find("\"graph.load\""), std::string::npos);
  EXPECT_NE(trace_doc.find("\"query.run\""), std::string::npos);

  std::string metrics_doc = Slurp(metrics_path);
  ExpectBalancedJsonObject(metrics_doc);
  EXPECT_NE(metrics_doc.find("\"build_info\""), std::string::npos);
  EXPECT_NE(metrics_doc.find("\"phases\""), std::string::npos);
  EXPECT_NE(metrics_doc.find("storage.file.read_syscall_ns"),
            std::string::npos) << "file-backend syscall histogram missing";

  unlink(trace_path.c_str());
  unlink(metrics_path.c_str());
  rmdir(dir.c_str());
}

TEST(CliObs, ReportJsonRejectedInQueryModeAndReferenceRejectsTrace) {
  TempScript script("count --algo=mgt\n");
  RunCli("query --graph=clique:k=5 --script=" + script.path + " --report=json",
         /*expected_status=*/2);
  RunCli("count --algo=reference --graph=clique:k=5 --trace=/tmp/nope.json",
         /*expected_status=*/2);
  RunCli("count --algo=mgt --graph=clique:k=5 --report=yaml",
         /*expected_status=*/2);
}

TEST(CliQuery, MissingScriptFails) {
  RunCli("query --graph=clique:k=5", /*expected_status=*/2);
  RunCli("query --graph=clique:k=5 --script=/nonexistent-trienum-script",
         /*expected_status=*/2);
}

TEST(CliQuery, BadScriptLineFails) {
  TempScript script("frobnicate --algo=mgt\n");
  RunCli("query --graph=clique:k=5 --script=" + script.path,
         /*expected_status=*/2);
  TempScript script2("count --bogus=1\n");
  RunCli("query --graph=clique:k=5 --script=" + script2.path,
         /*expected_status=*/2);
}

}  // namespace
}  // namespace trienum
