// Device allocation: alignment, region (LIFO) release, growth, peak
// tracking — the substrate behind the paper's O(E) disk-space claims.
#include <gtest/gtest.h>

#include "em/array.h"
#include "test_util.h"

namespace trienum {
namespace {

TEST(Device, AllocationsAreBlockAligned) {
  em::Context ctx = test::MakeContext(1024, 16);
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(3);
  em::Array<std::uint64_t> b = ctx.Alloc<std::uint64_t>(5);
  EXPECT_EQ(a.base() % 16, 0u);
  EXPECT_EQ(b.base() % 16, 0u);
  // Distinct arrays never share a cache line.
  EXPECT_GE(b.base(), a.base() + 16);
}

TEST(Device, RegionReleaseReclaimsSpace) {
  em::Context ctx = test::MakeContext(1024, 16);
  em::Addr before = ctx.device().Mark();
  {
    auto region = ctx.Region();
    ctx.Alloc<std::uint64_t>(1000);
    ctx.Alloc<std::uint64_t>(1000);
    EXPECT_GT(ctx.device().Mark(), before);
  }
  EXPECT_EQ(ctx.device().Mark(), before);
}

TEST(Device, NestedRegionsAreLifo) {
  em::Context ctx = test::MakeContext(1024, 16);
  em::Addr m0 = ctx.device().Mark();
  {
    auto r1 = ctx.Region();
    ctx.Alloc<std::uint64_t>(100);
    em::Addr m1 = ctx.device().Mark();
    {
      auto r2 = ctx.Region();
      ctx.Alloc<std::uint64_t>(100);
      EXPECT_GT(ctx.device().Mark(), m1);
    }
    EXPECT_EQ(ctx.device().Mark(), m1);
  }
  EXPECT_EQ(ctx.device().Mark(), m0);
}

TEST(Device, PeakTracksHighWaterMark) {
  em::Context ctx = test::MakeContext(1024, 16);
  ctx.device().ResetPeak();
  std::size_t before = ctx.device().peak_words();
  {
    auto region = ctx.Region();
    ctx.Alloc<std::uint64_t>(5000);
  }
  EXPECT_GE(ctx.device().peak_words(), before + 5000);
  std::size_t peak = ctx.device().peak_words();
  {
    auto region = ctx.Region();
    ctx.Alloc<std::uint64_t>(10);
  }
  EXPECT_EQ(ctx.device().peak_words(), peak);  // smaller regions don't move it
}

TEST(Device, GrowsOnDemand) {
  em::Context ctx = test::MakeContext(1024, 16);
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(1 << 18);
  a.Set((1 << 18) - 1, 99);
  EXPECT_EQ(a.Get((1 << 18) - 1), 99u);
}

TEST(Scratch, LeaseAccountingEnforcesBudget) {
  em::Context ctx = test::MakeContext(/*m=*/256, 16);
  EXPECT_EQ(ctx.scratch_in_use(), 0u);
  {
    em::ScratchLease l1 = ctx.LeaseScratch(100);
    EXPECT_EQ(ctx.scratch_in_use(), 100u);
    {
      em::ScratchLease l2 = ctx.LeaseScratch(120);
      EXPECT_EQ(ctx.scratch_in_use(), 220u);
    }
    EXPECT_EQ(ctx.scratch_in_use(), 100u);
  }
  EXPECT_EQ(ctx.scratch_in_use(), 0u);
}

TEST(Scratch, OverBudgetAborts) {
  em::Context ctx = test::MakeContext(/*m=*/256, 16);
  EXPECT_DEATH({ em::ScratchLease l = ctx.LeaseScratch(257); }, "scratch");
}

TEST(Scratch, MoveTransfersOwnership) {
  em::Context ctx = test::MakeContext(256, 16);
  em::ScratchLease a = ctx.LeaseScratch(50);
  em::ScratchLease b = std::move(a);
  EXPECT_EQ(ctx.scratch_in_use(), 50u);
  em::ScratchLease c;
  c = std::move(b);
  EXPECT_EQ(ctx.scratch_in_use(), 50u);
}

}  // namespace
}  // namespace trienum
