// Unit tests for the Status/Result error-handling primitives: value_or,
// the rvalue (move) access path, TRIENUM_ASSIGN_OR_RETURN, and the IoFault
// exception carrier used by the hot data plane.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace trienum {
namespace {

Result<std::string> MakeString(bool ok) {
  if (!ok) return Status::NotFound("no string today");
  return std::string("payload");
}

Result<std::unique_ptr<int>> MakePtr(bool ok) {
  if (!ok) return Status::IoError("no ptr");
  return std::make_unique<int>(42);
}

TEST(StatusResult, ValueOrReturnsValueOnOkAndFallbackOnError) {
  EXPECT_EQ(MakeString(true).value_or("fallback"), "payload");
  EXPECT_EQ(MakeString(false).value_or("fallback"), "fallback");

  Result<std::string> ok = MakeString(true);
  Result<std::string> err = MakeString(false);
  EXPECT_EQ(ok.value_or("fallback"), "payload");
  EXPECT_EQ(err.value_or("fallback"), "fallback");
  // The const& overload copies: the stored value must survive.
  EXPECT_EQ(*ok, "payload");
}

TEST(StatusResult, ValueOrOnRvalueMovesNoncopyableValue) {
  std::unique_ptr<int> p = MakePtr(true).value_or(nullptr);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 42);
  EXPECT_EQ(MakePtr(false).value_or(nullptr), nullptr);
}

TEST(StatusResult, RvalueDereferenceTakesTheMovePath) {
  // `*std::move(r)` (and `*Call()`) must move the value out, not copy it —
  // the idiom every FromEdges call site relies on for move-only payloads.
  std::unique_ptr<int> p = *MakePtr(true);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 42);

  Result<std::unique_ptr<int>> r = MakePtr(true);
  std::unique_ptr<int> q = *std::move(r);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(*q, 42);
  EXPECT_EQ(r.ValueOrDie(), nullptr) << "moved-from Result must be empty";

  Result<std::vector<int>> big(std::vector<int>(1000, 7));
  std::vector<int> v = *std::move(big);
  EXPECT_EQ(v.size(), 1000u);
  EXPECT_TRUE(big.ValueOrDie().empty()) << "vector must have been moved out";
}

Status UseAssignOrReturn(bool ok, std::string* out) {
  TRIENUM_ASSIGN_OR_RETURN(std::string s, MakeString(ok));
  *out = s + "!";
  return Status::OK();
}

Status UseAssignOrReturnTwiceAndMoveOnly(std::unique_ptr<int>* out) {
  // Two expansions in one function: the __LINE__-based temp name must not
  // collide, and a move-only value must transfer.
  TRIENUM_ASSIGN_OR_RETURN(std::unique_ptr<int> a, MakePtr(true));
  TRIENUM_ASSIGN_OR_RETURN(std::unique_ptr<int> b, MakePtr(true));
  *a += *b;
  *out = std::move(a);
  return Status::OK();
}

TEST(StatusResult, AssignOrReturnAssignsOnOkAndPropagatesOnError) {
  std::string out;
  EXPECT_TRUE(UseAssignOrReturn(true, &out).ok());
  EXPECT_EQ(out, "payload!");

  out.clear();
  Status st = UseAssignOrReturn(false, &out);
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "no string today");
  EXPECT_TRUE(out.empty()) << "error path must not touch the output";
}

TEST(StatusResult, AssignOrReturnHandlesMoveOnlyAndRepeatedUse) {
  std::unique_ptr<int> out;
  ASSERT_TRUE(UseAssignOrReturnTwiceAndMoveOnly(&out).ok());
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 84);
}

TEST(StatusResult, IoFaultCarriesTheStatusAndFormatsWhat) {
  Status st = Status::IoError("disk on fire");
  try {
    throw IoFault(st);
  } catch (const IoFault& f) {
    EXPECT_EQ(f.status().code(), StatusCode::kIoError);
    EXPECT_EQ(f.status().message(), "disk on fire");
    EXPECT_EQ(std::string(f.what()), st.ToString());
    return;
  }
  FAIL() << "IoFault was not caught";
}

TEST(StatusResult, StatusToStringAndCodeNames) {
  EXPECT_EQ(Status::OK().ToString(), "OK");
  EXPECT_EQ(Status::IoError("x").ToString(), "IoError: x");
  EXPECT_EQ(Status::CodeName(StatusCode::kCapacityExceeded),
            "CapacityExceeded");
}

}  // namespace
}  // namespace trienum
