// Adversarial differential suite for the layered sort engine.
//
// Layer by layer: SortRun (radix / index-gather / fallback) against
// std::stable_sort, the LoserTree against a stable k-way merge reference,
// and the whole ExternalMergeSort against a reference implementation built
// the pre-engine way (comparison-sorted runs + a (value, stream) heap) that
// issues the identical I/O sequence — on duplicates-heavy, presorted,
// reverse-sorted, all-equal and random inputs, over both storage backends,
// both ScanModes, and non-power-of-two B, asserting identical output AND
// identical IoStats.
//
// The engine-wide determinism contract pinned here: every sort path is
// stable, so ExternalMergeSort and FunnelSort both reproduce the
// std::stable_sort order exactly (and therefore each other).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "extsort/ext_merge_sort.h"
#include "extsort/funnel_sort.h"
#include "extsort/io_bounds.h"
#include "extsort/loser_tree.h"
#include "extsort/merge_runs.h"
#include "extsort/run_formation.h"
#include "extsort/sort_key.h"
#include "par/par_config.h"
#include "test_util.h"

namespace trienum {
namespace {

using extsort::LoserTree;
using extsort::SortKeyTraits;
using extsort::SortRun;

// ---------------------------------------------------------------------------
// Record types exercising every trait path.

/// Complete key, payload field: stability is observable through `tag`.
struct KeyedPayload {
  std::uint32_t k = 0;
  std::uint32_t tag = 0;
  friend bool operator==(const KeyedPayload& a, const KeyedPayload& b) {
    return a.k == b.k && a.tag == b.tag;
  }
};
struct KeyedPayloadLess {
  static constexpr bool kKeyComplete = true;
  static std::uint64_t Key(const KeyedPayload& r) { return r.k; }
  bool operator()(const KeyedPayload& a, const KeyedPayload& b) const {
    return a.k < b.k;
  }
};

/// 96-bit order truncated to a 64-bit prefix key (kKeyComplete == false).
struct Tri96 {
  std::uint32_t a = 0, b = 0, c = 0, pad = 0;
  friend bool operator==(const Tri96& x, const Tri96& y) {
    return x.a == y.a && x.b == y.b && x.c == y.c;
  }
};
struct Tri96Less {
  static constexpr bool kKeyComplete = false;
  static std::uint64_t Key(const Tri96& r) { return extsort::PackKey(r.a, r.b); }
  bool operator()(const Tri96& x, const Tri96& y) const {
    return std::tie(x.a, x.b, x.c) < std::tie(y.a, y.b, y.c);
  }
};

/// 24-byte record (the library's widest: wedge/incidence records) — sits
/// exactly on the direct-scatter boundary.
struct Mid24 {
  std::uint64_t key = 0;
  std::uint64_t x = 0, y = 0;
  friend bool operator==(const Mid24& a, const Mid24& b) {
    return a.key == b.key && a.x == b.x && a.y == b.y;
  }
};
struct Mid24Less {
  static constexpr bool kKeyComplete = true;
  static std::uint64_t Key(const Mid24& r) { return r.key; }
  bool operator()(const Mid24& a, const Mid24& b) const {
    return a.key < b.key;
  }
};

/// 32-byte record: takes the (key, index) + in-place-permute path.
struct WideRec {
  std::uint64_t key = 0;
  std::uint64_t x = 0, y = 0, z = 0;
  friend bool operator==(const WideRec& a, const WideRec& b) {
    return a.key == b.key && a.x == b.x && a.y == b.y && a.z == b.z;
  }
};
struct WideLess {
  static constexpr bool kKeyComplete = true;
  static std::uint64_t Key(const WideRec& r) { return r.key; }
  bool operator()(const WideRec& a, const WideRec& b) const {
    return a.key < b.key;
  }
};

static_assert(SortKeyTraits<KeyedPayloadLess, KeyedPayload>::kHasKey);
static_assert(SortKeyTraits<KeyedPayloadLess, KeyedPayload>::kComplete);
static_assert(SortKeyTraits<Tri96Less, Tri96>::kHasKey);
static_assert(!SortKeyTraits<Tri96Less, Tri96>::kComplete);
// std::less over unsigned integers radixes via the identity key.
static_assert(SortKeyTraits<std::less<std::uint64_t>, std::uint64_t>::kHasKey);
static_assert(SortKeyTraits<std::less<std::uint32_t>, std::uint32_t>::kHasKey);
// A bare lambda-style comparator has no key: comparison-sort fallback.
struct PlainLess {
  bool operator()(std::uint64_t a, std::uint64_t b) const { return a > b; }
};
static_assert(!SortKeyTraits<PlainLess, std::uint64_t>::kHasKey);

// ---------------------------------------------------------------------------
// Input patterns.

enum class Pattern { kRandom, kSorted, kReversed, kAllEqual, kDupHeavy };
const Pattern kAllPatterns[] = {Pattern::kRandom, Pattern::kSorted,
                                Pattern::kReversed, Pattern::kAllEqual,
                                Pattern::kDupHeavy};

const char* PatternName(Pattern p) {
  switch (p) {
    case Pattern::kRandom: return "random";
    case Pattern::kSorted: return "sorted";
    case Pattern::kReversed: return "reversed";
    case Pattern::kAllEqual: return "allequal";
    case Pattern::kDupHeavy: return "dupheavy";
  }
  return "?";
}

std::uint64_t PatternValue(Pattern p, std::size_t i, std::size_t n,
                           SplitMix64& rng) {
  switch (p) {
    case Pattern::kRandom: return rng.Next();
    case Pattern::kSorted: return i;
    case Pattern::kReversed: return n - i;
    case Pattern::kAllEqual: return 42;
    case Pattern::kDupHeavy: return rng.Next() % 7;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// 1. Host layer: SortRun == std::stable_sort on every trait path.

template <typename T, typename Less, typename Make>
void HostDifferential(Less less, Make make) {
  for (Pattern p : kAllPatterns) {
    // Sizes straddling the insertion-sort threshold and the radix path.
    for (std::size_t n : {0ul, 1ul, 2ul, 31ul, 47ul, 48ul, 257ul, 5000ul}) {
      SplitMix64 rng(0xC0FFEE ^ n);
      std::vector<T> input(n);
      for (std::size_t i = 0; i < n; ++i) input[i] = make(p, i, n, rng);
      std::vector<T> expect = input;
      std::stable_sort(expect.begin(), expect.end(), less);
      std::vector<T> got = input;
      SortRun(got.data(), got.size(), less);
      ASSERT_EQ(got, expect) << PatternName(p) << " n=" << n;
    }
  }
}

TEST(SortRun, MatchesStableSortOnU64IdentityKey) {
  HostDifferential<std::uint64_t>(
      std::less<std::uint64_t>{},
      [](Pattern p, std::size_t i, std::size_t n, SplitMix64& rng) {
        return PatternValue(p, i, n, rng);
      });
}

TEST(SortRun, MatchesStableSortOnEdgesLex) {
  HostDifferential<graph::Edge>(
      graph::LexLess{},
      [](Pattern p, std::size_t i, std::size_t n, SplitMix64& rng) {
        std::uint64_t v = PatternValue(p, i, n, rng);
        return graph::Edge{static_cast<graph::VertexId>(v % 97),
                           static_cast<graph::VertexId>((v >> 8) % 97)};
      });
}

TEST(SortRun, StableOnCompleteKeyWithPayload) {
  HostDifferential<KeyedPayload>(
      KeyedPayloadLess{},
      [](Pattern p, std::size_t i, std::size_t n, SplitMix64& rng) {
        return KeyedPayload{
            static_cast<std::uint32_t>(PatternValue(p, i, n, rng) % 13),
            static_cast<std::uint32_t>(i)};  // tag records the input order
      });
}

TEST(SortRun, PrefixKeyFinishesTieRunsWithComparator) {
  HostDifferential<Tri96>(
      Tri96Less{}, [](Pattern p, std::size_t i, std::size_t n, SplitMix64& rng) {
        std::uint64_t v = PatternValue(p, i, n, rng);
        return Tri96{static_cast<std::uint32_t>(v % 5),
                     static_cast<std::uint32_t>((v >> 3) % 5),
                     static_cast<std::uint32_t>((v >> 6) % 5), 0};
      });
}

TEST(SortRun, BoundaryWidthRecordsScatterDirectly) {
  static_assert(sizeof(Mid24) == 24, "must sit on the direct-scatter boundary");
  HostDifferential<Mid24>(
      Mid24Less{}, [](Pattern p, std::size_t i, std::size_t n, SplitMix64& rng) {
        std::uint64_t v = PatternValue(p, i, n, rng);
        return Mid24{v % 11, i, ~i};
      });
}

TEST(SortRun, WideRecordsGoThroughIndexPermute) {
  static_assert(sizeof(WideRec) > 24, "must exercise the index-permute path");
  HostDifferential<WideRec>(
      WideLess{}, [](Pattern p, std::size_t i, std::size_t n, SplitMix64& rng) {
        std::uint64_t v = PatternValue(p, i, n, rng);
        return WideRec{v % 11, i, ~i, i * 3};
      });
}

TEST(SortRun, KeylessComparatorFallsBackStable) {
  HostDifferential<std::uint64_t>(
      PlainLess{}, [](Pattern p, std::size_t i, std::size_t n, SplitMix64& rng) {
        return PatternValue(p, i, n, rng);
      });
}

// ---------------------------------------------------------------------------
// 2. Merge layer: LoserTree == stable k-way merge reference.

TEST(LoserTree, MatchesStableKWayMerge) {
  for (std::size_t k : {1ul, 2ul, 3ul, 5ul, 8ul, 9ul, 31ul}) {
    for (Pattern p : kAllPatterns) {
      SplitMix64 rng(k * 1000003 + static_cast<std::size_t>(p));
      // Sorted source runs of uneven lengths (some empty).
      std::vector<std::vector<std::uint64_t>> runs(k);
      for (std::size_t s = 0; s < k; ++s) {
        std::size_t len = (s % 3 == 2) ? 0 : rng.Below(200);
        runs[s].resize(len);
        for (std::size_t i = 0; i < len; ++i) {
          runs[s][i] = PatternValue(p, i, len, rng);
        }
        std::sort(runs[s].begin(), runs[s].end());
      }

      // Reference: repeatedly take the (value, source) minimum — the stable
      // merge order.
      std::vector<std::pair<std::uint64_t, std::size_t>> expect;
      {
        std::vector<std::size_t> pos(k, 0);
        while (true) {
          std::size_t best = k;
          for (std::size_t s = 0; s < k; ++s) {
            if (pos[s] >= runs[s].size()) continue;
            if (best == k || runs[s][pos[s]] < runs[best][pos[best]]) best = s;
          }
          if (best == k) break;
          expect.emplace_back(runs[best][pos[best]], best);
          ++pos[best];
        }
      }

      LoserTree<std::uint64_t, std::less<std::uint64_t>> tree(k, {});
      std::vector<std::size_t> pos(k, 0);
      for (std::size_t s = 0; s < k; ++s) {
        if (!runs[s].empty()) tree.SetInitial(s, runs[s][pos[s]++]);
      }
      tree.Init();
      std::vector<std::pair<std::uint64_t, std::size_t>> got;
      while (tree.HasWinner()) {
        std::size_t s = tree.WinnerSource();
        got.emplace_back(tree.WinnerValue(), s);
        if (pos[s] < runs[s].size()) {
          tree.ReplaceWinner(runs[s][pos[s]++]);
        } else {
          tree.ExhaustWinner();
        }
      }
      ASSERT_EQ(got, expect) << "k=" << k << " " << PatternName(p);
    }
  }
}

// ---------------------------------------------------------------------------
// 3. Engine vs pre-engine reference: identical output AND identical IoStats.

/// The PR 3 implementation shape — comparison-sorted runs, (value, stream)
/// heap merge — with stable tie-breaking so its output order is the spec the
/// engine must reproduce. Every device access (ReadTo/WriteFrom, Scanner /
/// Writer construction and consumption order, scratch leases) mirrors
/// ExternalMergeSort call for call, so its IoStats are the engine's
/// invariance baseline.
template <typename T, typename Less>
void ReferenceMergeSort(em::Context& ctx, em::Array<T> data, Less less) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  const std::size_t words_per = em::Array<T>::kWordsPer;
  auto region = ctx.Region();

  const std::size_t run_items =
      std::max<std::size_t>(1, (ctx.memory_words() / 2) / words_per);
  em::Array<T> ping = ctx.Alloc<T>(n);
  std::vector<std::pair<std::size_t, std::size_t>> runs;
  {
    em::ScratchLease lease = ctx.LeaseScratch(run_items * words_per);
    std::vector<T> buf(std::min(run_items, n));
    for (std::size_t lo = 0; lo < n; lo += run_items) {
      std::size_t hi = std::min(n, lo + run_items);
      data.ReadTo(lo, hi, buf.data());
      std::stable_sort(buf.begin(), buf.begin() + (hi - lo), less);
      ctx.AddWork((hi - lo) * 4);
      ping.WriteFrom(lo, hi, buf.data());
      runs.emplace_back(lo, hi);
    }
  }

  const std::size_t fan =
      std::max<std::size_t>(2, ctx.memory_words() / (2 * ctx.block_words()));
  em::Array<T> pong = runs.size() > 1 ? ctx.Alloc<T>(n) : em::Array<T>();
  em::Array<T> src = ping;
  while (runs.size() > 1) {
    std::vector<std::pair<std::size_t, std::size_t>> next_runs;
    em::Writer<T> out(pong);
    for (std::size_t g = 0; g < runs.size(); g += fan) {
      std::size_t g_end = std::min(runs.size(), g + fan);
      std::size_t out_lo = out.count();

      em::ScratchLease lease = ctx.LeaseScratch((g_end - g) * (words_per + 2));
      std::vector<em::Scanner<T>> streams;
      streams.reserve(g_end - g);
      for (std::size_t r = g; r < g_end; ++r) {
        streams.emplace_back(src, runs[r].first, runs[r].second);
      }
      // Max-heap inverted to a min-heap on (value, stream): the stable order.
      auto heap_less = [&less](const std::pair<T, std::size_t>& a,
                               const std::pair<T, std::size_t>& b) {
        if (less(b.first, a.first)) return true;
        if (less(a.first, b.first)) return false;
        return b.second < a.second;
      };
      std::vector<std::pair<T, std::size_t>> heap;
      for (std::size_t s = 0; s < streams.size(); ++s) {
        if (streams[s].HasNext()) heap.emplace_back(streams[s].Next(), s);
      }
      std::make_heap(heap.begin(), heap.end(), heap_less);
      while (!heap.empty()) {
        std::pop_heap(heap.begin(), heap.end(), heap_less);
        auto [v, s] = heap.back();
        heap.pop_back();
        out.Push(v);
        ctx.AddWork(4);
        if (streams[s].HasNext()) {
          heap.emplace_back(streams[s].Next(), s);
          std::push_heap(heap.begin(), heap.end(), heap_less);
        }
      }
      next_runs.emplace_back(out_lo, out.count());
    }
    out.Flush();
    runs.swap(next_runs);
    std::swap(src, pong);
  }
  if (src.base() != data.base()) extsort::Copy(src, data);
}

bool SameIo(const em::IoStats& a, const em::IoStats& b) {
  return a.block_reads == b.block_reads && a.block_writes == b.block_writes &&
         a.cache_hits == b.cache_hits;
}

std::string IoStr(const em::IoStats& s) {
  return "r=" + std::to_string(s.block_reads) +
         " w=" + std::to_string(s.block_writes) +
         " h=" + std::to_string(s.cache_hits);
}

struct EngineParam {
  std::size_t n;
  Pattern pattern;
  std::size_t m_words;
  std::size_t b_words;  // includes a non-power-of-two B
  em::StorageKind storage;
  em::ScanMode mode;
};

class SortEngineDifferentialTest
    : public ::testing::TestWithParam<EngineParam> {};

TEST_P(SortEngineDifferentialTest, EngineMatchesReferenceOutputAndIo) {
  const EngineParam& p = GetParam();
  std::vector<std::uint64_t> input(p.n);
  SplitMix64 rng(0x5EED ^ p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    input[i] = PatternValue(p.pattern, i, p.n, rng);
  }

  em::ScopedScanMode sm(p.mode);
  auto run = [&](auto sort_fn, std::vector<std::uint64_t>* out,
                 em::IoStats* io) {
    em::Context ctx = test::MakeContext(p.m_words, p.b_words, 0x7001, p.storage);
    em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(p.n);
    ctx.cache().set_counting(false);
    a.WriteFrom(0, p.n, input.data());
    ctx.cache().set_counting(true);
    ctx.cache().Reset();
    sort_fn(ctx, a);
    ctx.cache().FlushAll();
    *io = ctx.cache().stats();
    out->resize(p.n);
    ctx.cache().set_counting(false);
    a.ReadTo(0, p.n, out->data());
  };

  std::vector<std::uint64_t> got, expect;
  em::IoStats got_io, expect_io;
  run([](em::Context& ctx, em::Array<std::uint64_t> a) {
        extsort::ExternalMergeSort(ctx, a, std::less<std::uint64_t>{});
      },
      &got, &got_io);
  run([](em::Context& ctx, em::Array<std::uint64_t> a) {
        ReferenceMergeSort(ctx, a, std::less<std::uint64_t>{});
      },
      &expect, &expect_io);

  EXPECT_EQ(got, expect);
  EXPECT_TRUE(SameIo(got_io, expect_io))
      << "engine=" << IoStr(got_io) << " reference=" << IoStr(expect_io);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
}

std::vector<EngineParam> EngineParams() {
  std::vector<EngineParam> out;
  struct Cfg {
    std::size_t m, b;
  };
  // M=256 forces many merge passes; B=48 is the non-power-of-two line size.
  const Cfg cfgs[] = {{1 << 10, 16}, {1 << 10, 48}, {256, 16}};
  for (Pattern p : kAllPatterns) {
    for (const Cfg& c : cfgs) {
      for (em::StorageKind st :
           {em::StorageKind::kMemory, em::StorageKind::kFile}) {
        for (em::ScanMode mode :
             {em::ScanMode::kBuffered, em::ScanMode::kElementwise}) {
          out.push_back(EngineParam{5000, p, c.m, c.b, st, mode});
        }
      }
    }
  }
  return out;
}

std::string EngineName(const ::testing::TestParamInfo<EngineParam>& info) {
  const EngineParam& p = info.param;
  std::string out = PatternName(p.pattern);
  out += "_M";
  out += std::to_string(p.m_words);
  out += "_B";
  out += std::to_string(p.b_words);
  out += p.storage == em::StorageKind::kMemory ? "_mem" : "_file";
  out += p.mode == em::ScanMode::kBuffered ? "_buf" : "_elem";
  return out;
}

INSTANTIATE_TEST_SUITE_P(Adversarial, SortEngineDifferentialTest,
                         ::testing::ValuesIn(EngineParams()), EngineName);

// ---------------------------------------------------------------------------
// 4. Whole-engine stability: both sorts reproduce std::stable_sort exactly
// (and therefore each other) on payload-carrying records.

TEST(SortEngine, BothSortsAreStableAndAgree) {
  const std::size_t n = 3000;
  std::vector<KeyedPayload> input(n);
  SplitMix64 rng(77);
  for (std::size_t i = 0; i < n; ++i) {
    input[i] = KeyedPayload{static_cast<std::uint32_t>(rng.Below(9)),
                            static_cast<std::uint32_t>(i)};
  }
  std::vector<KeyedPayload> expect = input;
  std::stable_sort(expect.begin(), expect.end(), KeyedPayloadLess{});

  auto run = [&](auto sort_fn) {
    em::Context ctx = test::MakeContext(1 << 10, 16);
    em::Array<KeyedPayload> a = ctx.Alloc<KeyedPayload>(n);
    a.WriteFrom(0, n, input.data());
    sort_fn(ctx, a);
    std::vector<KeyedPayload> out(n);
    a.ReadTo(0, n, out.data());
    return out;
  };
  std::vector<KeyedPayload> ems = run([](em::Context& ctx, em::Array<KeyedPayload> a) {
    extsort::ExternalMergeSort(ctx, a, KeyedPayloadLess{});
  });
  std::vector<KeyedPayload> fun = run([](em::Context& ctx, em::Array<KeyedPayload> a) {
    extsort::FunnelSort(ctx, a, KeyedPayloadLess{});
  });
  EXPECT_EQ(ems, expect);
  EXPECT_EQ(fun, expect);
}

// ---------------------------------------------------------------------------
// 5. Keyed struct sorts through the engine: prefix-key records end-to-end on
// both backends, bit-for-bit.

TEST(SortEngine, PrefixKeyRecordsAcrossBackends) {
  const std::size_t n = 4000;
  std::vector<graph::ColoredEdge> input(n);
  SplitMix64 rng(31337);
  for (std::size_t i = 0; i < n; ++i) {
    input[i] = graph::ColoredEdge{
        static_cast<graph::VertexId>(rng.Below(50)),
        static_cast<graph::VertexId>(rng.Below(50)),
        static_cast<std::uint32_t>(rng.Below(4)),
        static_cast<std::uint32_t>(rng.Below(4))};
  }
  std::vector<graph::ColoredEdge> expect = input;
  std::stable_sort(expect.begin(), expect.end(), graph::ColorClassLess{});

  for (em::StorageKind st : {em::StorageKind::kMemory, em::StorageKind::kFile}) {
    em::Context ctx = test::MakeContext(1 << 10, 16, 0x7001, st);
    em::Array<graph::ColoredEdge> a = ctx.Alloc<graph::ColoredEdge>(n);
    a.WriteFrom(0, n, input.data());
    extsort::ExternalMergeSort(ctx, a, graph::ColorClassLess{});
    std::vector<graph::ColoredEdge> out(n);
    a.ReadTo(0, n, out.data());
    EXPECT_TRUE(std::equal(out.begin(), out.end(), expect.begin(),
                           [](const graph::ColoredEdge& x,
                              const graph::ColoredEdge& y) { return x == y; }))
        << (st == em::StorageKind::kMemory ? "memory" : "file");
  }
}

// ---------------------------------------------------------------------------
// 6. The relocated I/O bound still prices the engine.

TEST(SortEngine, IoBoundHeaderPricesTheEngine) {
  const std::size_t n = 1 << 14, m = 1 << 10, b = 16;
  em::Context ctx = test::MakeContext(m, b);
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(n);
  SplitMix64 rng(5);
  ctx.cache().set_counting(false);
  for (std::size_t i = 0; i < n; ++i) a.Set(i, rng.Next());
  ctx.cache().set_counting(true);
  ctx.cache().Reset();
  extsort::ExternalMergeSort(ctx, a, std::less<std::uint64_t>{});
  ctx.cache().FlushAll();
  double bound = extsort::SortIoBound(n, 1, m, b);
  EXPECT_LE(static_cast<double>(ctx.cache().stats().total_ios()), 3.0 * bound);
}

// ---------------------------------------------------------------------------
// 7. Host-side k-way run merge: the key-space-partitioned parallel merge
// must reproduce the serial stable merge bit-for-bit at every thread
// count — including on the inputs that stress the splitter logic
// (dup-heavy keys, presorted runs, all keys equal, skewed run lengths,
// empty runs). Provenance tags make any reordering of equal keys visible.

/// Sorted runs of (key, tag) records where tag encodes (run, position) —
/// one byte pattern per record, so equality is exact provenance.
std::vector<std::vector<KeyedPayload>> MakeTaggedRuns(
    Pattern p, std::size_t k, std::size_t per_run, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<std::vector<KeyedPayload>> runs(k);
  for (std::size_t r = 0; r < k; ++r) {
    // Skew: run 0 is long, later runs shrink (run lengths differ so the
    // splitters come from a genuinely dominant run).
    const std::size_t len = per_run / (r + 1);
    runs[r].resize(len);
    for (std::size_t i = 0; i < len; ++i) {
      runs[r][i].k = static_cast<std::uint32_t>(
          PatternValue(p, i, len, rng) % 97);
      runs[r][i].tag = static_cast<std::uint32_t>((r << 20) | i);
    }
    std::stable_sort(runs[r].begin(), runs[r].end(), KeyedPayloadLess{});
  }
  return runs;
}

TEST(MergeRuns, ParallelEqualsSerialStableMergeAcrossThreads) {
  for (Pattern p : {Pattern::kDupHeavy, Pattern::kSorted, Pattern::kAllEqual,
                    Pattern::kRandom}) {
    for (std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
      const auto owned = MakeTaggedRuns(p, k, 9000, 0xD00D ^ k);
      std::vector<extsort::RunView<KeyedPayload>> runs(k);
      std::size_t total = 0;
      for (std::size_t r = 0; r < k; ++r) {
        runs[r] = {owned[r].data(), owned[r].size()};
        total += owned[r].size();
      }
      std::vector<KeyedPayload> expect(total);
      extsort::MergeRunsSerial(runs, expect.data(), KeyedPayloadLess{});
      // The serial reference is itself a stable merge: equal keys come out
      // in run order, and within a run in position order.
      ASSERT_TRUE(std::is_sorted(expect.begin(), expect.end(),
                                 [](const KeyedPayload& a,
                                    const KeyedPayload& b) {
                                   return a.k != b.k ? a.k < b.k
                                                     : a.tag < b.tag;
                                 }))
          << PatternName(p) << " k=" << k;
      for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                  std::size_t{7}}) {
        par::ScopedThreads scope(threads);
        std::vector<KeyedPayload> got(total,
                                      KeyedPayload{0xFFFFFFFFu, 0xFFFFFFFFu});
        extsort::MergeSortedRuns(runs, got.data(), KeyedPayloadLess{});
        ASSERT_EQ(got, expect)
            << PatternName(p) << " k=" << k << " threads=" << threads;
      }
    }
  }
}

TEST(MergeRuns, EmptyAndDegenerateRuns) {
  par::ScopedThreads scope(7);
  // All runs empty.
  std::vector<extsort::RunView<KeyedPayload>> empty(3);
  extsort::MergeSortedRuns(empty, static_cast<KeyedPayload*>(nullptr),
                           KeyedPayloadLess{});
  // One run empty among real ones, total large enough to fan out.
  const auto owned = MakeTaggedRuns(Pattern::kDupHeavy, 4, 40000, 0xD11D);
  std::vector<extsort::RunView<KeyedPayload>> runs(5);
  std::size_t total = 0;
  for (std::size_t r = 0; r < 4; ++r) {
    runs[r] = {owned[r].data(), owned[r].size()};
    total += owned[r].size();
  }
  runs[4] = {nullptr, 0};
  std::vector<KeyedPayload> expect(total), got(total);
  extsort::MergeRunsSerial(runs, expect.data(), KeyedPayloadLess{});
  extsort::MergeSortedRuns(runs, got.data(), KeyedPayloadLess{});
  EXPECT_EQ(got, expect);
}

// ---------------------------------------------------------------------------
// 8. The keyless SortRun path (chunked parallel stable sorts + run merge)
// against std::stable_sort, and the end-to-end keyless external sort:
// output AND IoStats must be thread-count invariant (run formation is pure
// host compute between the engine's charged passes).

TEST(SortRunParallel, KeylessFallbackMatchesStableSortAcrossThreads) {
  for (Pattern p : {Pattern::kDupHeavy, Pattern::kSorted, Pattern::kAllEqual,
                    Pattern::kRandom}) {
    // Above the parallel grain so the chunked path actually engages.
    for (std::size_t n : {std::size_t{300}, std::size_t{40000}}) {
      SplitMix64 rng(0xBEEF ^ n);
      std::vector<std::uint64_t> input(n);
      for (std::size_t i = 0; i < n; ++i) {
        input[i] = PatternValue(p, i, n, rng);
      }
      std::vector<std::uint64_t> expect = input;
      std::stable_sort(expect.begin(), expect.end(), PlainLess{});
      for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                  std::size_t{7}}) {
        par::ScopedThreads scope(threads);
        std::vector<std::uint64_t> got = input;
        SortRun(got.data(), got.size(), PlainLess{});
        ASSERT_EQ(got, expect)
            << PatternName(p) << " n=" << n << " threads=" << threads;
      }
    }
  }
}

TEST(SortRunParallel, KeylessExternalSortKeepsOutputAndIoStatsIdentical) {
  // M = 2^16 words: 65536-record loads, well above the merge grain, so the
  // keyless run formation chunks and merges in parallel at threads > 1.
  const std::size_t n = 1 << 17, m = 1 << 16, b = 64;
  auto run = [&](std::size_t threads) {
    par::ScopedThreads scope(threads);
    em::Context ctx = test::MakeContext(m, b);
    em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(n);
    SplitMix64 rng(0xFACE);
    ctx.cache().set_counting(false);
    for (std::size_t i = 0; i < n; ++i) a.Set(i, rng.Next() % 13);
    ctx.cache().set_counting(true);
    ctx.cache().Reset();
    extsort::ExternalMergeSort(ctx, a, PlainLess{});
    ctx.cache().FlushAll();
    std::vector<std::uint64_t> out(n);
    ctx.cache().set_counting(false);
    a.ReadTo(0, n, out.data());
    return std::make_pair(out, ctx.cache().stats());
  };
  const auto [base_out, base_io] = run(1);
  ASSERT_TRUE(std::is_sorted(base_out.begin(), base_out.end(), PlainLess{}));
  for (std::size_t threads : {std::size_t{2}, std::size_t{7}}) {
    const auto [out, io] = run(threads);
    ASSERT_EQ(out, base_out) << "threads " << threads;
    EXPECT_EQ(io.block_reads, base_io.block_reads) << "threads " << threads;
    EXPECT_EQ(io.block_writes, base_io.block_writes) << "threads " << threads;
    EXPECT_EQ(io.cache_hits, base_io.cache_hits) << "threads " << threads;
  }
}

}  // namespace
}  // namespace trienum
