// Randomized property tests for the Device allocator's region discipline —
// the invariants the file-backed storage path relies on: Mark/Release LIFO
// nesting, peak-words monotonicity, and block-aligned allocations never
// sharing a cache line. Each property drives a seeded random op sequence
// against a host-side model and runs on both storage backends (address
// assignment must be backend-independent).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "em/device.h"
#include "graph/generators.h"
#include "query/query.h"

namespace trienum {
namespace {

constexpr std::size_t kBlock = 16;

std::unique_ptr<em::StorageBackend> MakeBackend(bool file) {
  if (file) return std::make_unique<em::FileBackend>();
  return std::make_unique<em::MemoryBackend>();
}

TEST(DeviceProperty, MarkReleaseNestingIsLifo) {
  // Random interleaving of {open region, allocate, close region}: after every
  // close, the device top must equal the mark recorded at the matching open,
  // and marks must pop in strict LIFO order.
  for (bool file : {false, true}) {
    SCOPED_TRACE(file ? "file" : "memory");
    em::Device dev(MakeBackend(file));
    SplitMix64 rng(0xA11C);
    std::vector<em::Addr> marks;  // model of the open-region stack
    for (int step = 0; step < 2000; ++step) {
      std::uint64_t op = rng.Below(3);
      if (op == 0) {
        marks.push_back(dev.Mark());
      } else if (op == 1 && !marks.empty() && rng.Below(4) == 0) {
        em::Addr expected = marks.back();
        marks.pop_back();
        dev.Release(expected);
        ASSERT_EQ(dev.Mark(), expected) << "release must restore the mark";
      } else {
        std::size_t before = dev.allocated_words();
        em::Addr base = dev.Allocate(1 + rng.Below(200), kBlock);
        ASSERT_GE(base, before) << "allocation must come from the top";
        ASSERT_GT(dev.allocated_words(), before);
      }
      // Invariant: open marks are non-decreasing and bounded by the top.
      for (std::size_t i = 1; i < marks.size(); ++i) {
        ASSERT_LE(marks[i - 1], marks[i]);
      }
      if (!marks.empty()) {
        ASSERT_LE(marks.back(), dev.Mark());
      }
    }
  }
}

TEST(DeviceProperty, PeakWordsIsMonotoneAndDominatesAllocation) {
  // peak_words never decreases under any op sequence and always dominates
  // the current allocation level — the substrate of the O(E) disk claims.
  em::Device dev;
  SplitMix64 rng(0xBEEF);
  std::vector<em::Addr> marks;
  std::size_t last_peak = dev.peak_words();
  for (int step = 0; step < 3000; ++step) {
    if (rng.Below(3) == 0) {
      if (rng.Below(2) == 0 || marks.empty()) {
        marks.push_back(dev.Mark());
      } else {
        dev.Release(marks.back());
        marks.pop_back();
      }
    } else {
      dev.Allocate(1 + rng.Below(500), 1 + rng.Below(kBlock));
    }
    ASSERT_GE(dev.peak_words(), last_peak) << "peak must be monotone";
    ASSERT_GE(dev.peak_words(), dev.allocated_words());
    last_peak = dev.peak_words();
  }
  // ResetPeak re-anchors to the current level (used between measured phases).
  dev.ResetPeak();
  EXPECT_EQ(dev.peak_words(), dev.allocated_words());
}

TEST(DeviceProperty, BlockAlignedAllocationsNeverShareACacheLine) {
  // Every block-aligned allocation must occupy its own set of B-word lines:
  // I/O accounting may never charge one array for another's traffic, and the
  // staged cache may never write one array's dirty line over another's words.
  for (bool file : {false, true}) {
    SCOPED_TRACE(file ? "file" : "memory");
    em::Device dev(MakeBackend(file));
    SplitMix64 rng(0xCAFE);
    struct Extent {
      em::Addr first_line;
      em::Addr last_line;
    };
    std::vector<std::vector<Extent>> live(1);  // per open region
    std::vector<em::Addr> marks;
    for (int step = 0; step < 1500; ++step) {
      std::uint64_t op = rng.Below(8);
      if (op == 0) {
        marks.push_back(dev.Mark());
        live.emplace_back();
      } else if (op == 1 && !marks.empty()) {
        dev.Release(marks.back());
        marks.pop_back();
        live.pop_back();
      } else {
        std::size_t words = 1 + rng.Below(3 * kBlock);
        em::Addr base = dev.Allocate(words, kBlock);
        ASSERT_EQ(base % kBlock, 0u) << "allocation must be block-aligned";
        Extent e{base / kBlock, (base + words - 1) / kBlock};
        for (const auto& region : live) {
          for (const Extent& other : region) {
            ASSERT_TRUE(e.first_line > other.last_line ||
                        e.last_line < other.first_line)
                << "line sets of live allocations must be disjoint";
          }
        }
        live.back().push_back(e);
      }
    }
  }
}

TEST(DeviceProperty, StoreReuseKeepsBackendWarmAndRegionDisciplineIntact) {
  // A GraphStore serving many queries must reuse its backing storage: the
  // first query may grow the backend (vector resize / ftruncate of the
  // unlinked temp file), but later queries allocate inside released regions
  // at the same addresses, so the backend never re-creates or re-truncates —
  // grow_calls stays flat and the device top returns to the frozen mark
  // after every query.
  for (em::StorageKind storage :
       {em::StorageKind::kMemory, em::StorageKind::kFile}) {
    SCOPED_TRACE(storage == em::StorageKind::kFile ? "file" : "memory");
    em::EmConfig cfg;
    cfg.memory_words = 1024;
    cfg.block_words = kBlock;
    cfg.storage = storage;
    query::LoadedGraph lg =
        *query::LoadedGraph::FromEdges(cfg, graph::Gnm(128, 500, 0x11));

    query::Query q;
    q.algo = "mgt";
    ASSERT_TRUE(lg.Run(q).ok());  // warm-up query: may grow the backend
    const std::uint64_t warm = lg.store().device().backend().grow_calls();
    const std::size_t warm_size = lg.store().device().backend().size_words();

    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(lg.Run(q).ok());
      EXPECT_EQ(lg.store().device().backend().grow_calls(), warm)
          << "query " << i + 2 << " re-grew the backing storage";
      EXPECT_EQ(lg.store().device().backend().size_words(), warm_size);
      EXPECT_EQ(lg.store().device().Mark(), lg.frozen_mark())
          << "query " << i + 2 << " broke region discipline";
    }
  }
}

TEST(DeviceProperty, AddressAssignmentIsBackendIndependent) {
  // Identical op sequences must yield identical addresses on both backends —
  // the precondition for IoStats being backend-independent.
  em::Device mem(MakeBackend(false));
  em::Device file(MakeBackend(true));
  SplitMix64 rng(0x5EED);
  std::vector<std::pair<em::Addr, em::Addr>> marks;
  for (int step = 0; step < 1000; ++step) {
    std::uint64_t op = rng.Below(4);
    if (op == 0) {
      marks.emplace_back(mem.Mark(), file.Mark());
    } else if (op == 1 && !marks.empty()) {
      mem.Release(marks.back().first);
      file.Release(marks.back().second);
      marks.pop_back();
    } else {
      std::size_t words = 1 + rng.Below(300);
      std::size_t align = 1 + rng.Below(64);
      ASSERT_EQ(mem.Allocate(words, align), file.Allocate(words, align));
    }
    ASSERT_EQ(mem.Mark(), file.Mark());
    ASSERT_EQ(mem.peak_words(), file.peak_words());
  }
}

}  // namespace
}  // namespace trienum
