// Seed-sweep property tests for the randomized algorithms: across many seeds
// and both randomized engines, the emitted triangle set must be invariant
// (only the I/O trajectory may change). Parameterized on (algorithm, seed).
#include <gtest/gtest.h>

#include "core/cache_aware.h"
#include "core/cache_oblivious.h"
#include "test_util.h"

namespace trienum {
namespace {

using namespace trienum::graph;

struct SweepParam {
  bool oblivious;
  std::uint64_t seed;
};

class RandomizedSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RandomizedSweepTest, TriangleSetInvariantUnderSeed) {
  const SweepParam& p = GetParam();
  auto raw = Gnm(300, 2600, 12345);  // one fixed instance for all seeds
  static const std::vector<Triangle> expected = test::ReferenceNormalized(raw);

  em::Context ctx = test::MakeContext(1 << 10, 16);
  EmGraph g = BuildEmGraph(ctx, raw);
  core::CollectingSink sink;
  if (p.oblivious) {
    core::CacheObliviousOptions opts;
    opts.seed = p.seed;
    core::EnumerateCacheOblivious(ctx, g, sink, opts);
  } else {
    core::CacheAwareOptions opts;
    opts.seed = p.seed;
    core::EnumerateCacheAware(ctx, g, sink, opts);
  }
  std::vector<Triangle> got = sink.triangles();
  std::sort(got.begin(), got.end());
  EXPECT_TRUE(test::NoDuplicates(got));
  EXPECT_EQ(got, expected);
}

std::vector<SweepParam> SweepParams() {
  std::vector<SweepParam> out;
  for (bool oblivious : {false, true}) {
    for (std::uint64_t s = 1; s <= 12; ++s) {
      out.push_back(SweepParam{oblivious, s * 0x9E37 + 1});
    }
  }
  return out;
}

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  return std::string(info.param.oblivious ? "oblivious" : "aware") + "_seed" +
         std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedSweepTest,
                         ::testing::ValuesIn(SweepParams()), SweepName);

}  // namespace
}  // namespace trienum
