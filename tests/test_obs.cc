// The observability invariance contract, pinned: installing a
// TraceCollector (spans sampled, histograms windowed) must be bit-invisible
// to triangles, emission order, IoStats, internal work, and the resolved
// seed, across the full algorithm x backend x scan-mode x threads matrix.
// Plus the subsystem's own unit surface: histogram bucket geometry and
// windowed deltas, registry snapshot consistency under concurrent writers,
// span-imbalance death, exclusive-delta telescoping, and Chrome-JSON
// well-formedness of the emitted trace.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "graph/generators.h"
#include "obs/build_info.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/query.h"

namespace trienum {
namespace {

constexpr std::size_t kMemWords = 2048;
constexpr std::size_t kBlockWords = 32;
constexpr std::uint64_t kMasterSeed = 0x0B5;

em::EmConfig TestConfig(em::StorageKind storage) {
  em::EmConfig cfg;
  cfg.memory_words = kMemWords;
  cfg.block_words = kBlockWords;
  cfg.seed = kMasterSeed;
  cfg.storage = storage;
  return cfg;
}

std::vector<graph::Edge> FixtureEdges() {
  return graph::Rmat(8, 1200, 0.45, 0.22, 0.22, 17);
}

// ---------------------------------------------------------------------------
// Histogram geometry and windowed deltas.

TEST(ObsHistogram, BucketEdgesArePowersOfTwo) {
  // Bucket 0 holds exactly the value 0; bucket i >= 1 holds [2^(i-1), 2^i-1].
  EXPECT_EQ(obs::HistogramBucketIndex(0), 0);
  EXPECT_EQ(obs::HistogramBucketIndex(1), 1);
  EXPECT_EQ(obs::HistogramBucketIndex(2), 2);
  EXPECT_EQ(obs::HistogramBucketIndex(3), 2);
  EXPECT_EQ(obs::HistogramBucketIndex(4), 3);
  EXPECT_EQ(obs::HistogramBucketIndex((std::uint64_t{1} << 62) - 1), 62);
  EXPECT_EQ(obs::HistogramBucketIndex(std::uint64_t{1} << 62), 63);
  EXPECT_EQ(obs::HistogramBucketIndex(~std::uint64_t{0}), 63);

  for (int i = 1; i < obs::kHistogramBuckets - 1; ++i) {
    // Every bucket's edges map back to that bucket, and the edges tile.
    EXPECT_EQ(obs::HistogramBucketIndex(obs::HistogramBucketLo(i)), i) << i;
    EXPECT_EQ(obs::HistogramBucketIndex(obs::HistogramBucketHi(i)), i) << i;
    EXPECT_EQ(obs::HistogramBucketHi(i) + 1, obs::HistogramBucketLo(i + 1))
        << i;
  }
  EXPECT_EQ(obs::HistogramBucketHi(obs::kHistogramBuckets - 1),
            ~std::uint64_t{0});
}

TEST(ObsHistogram, ObserveFillsCountSumMaxAndBuckets) {
  obs::Histogram h;
  h.Observe(0);
  h.Observe(1);
  h.Observe(5);    // bucket 3: [4, 7]
  h.Observe(100);  // bucket 7: [64, 127]
  obs::HistogramSnapshot s = h.Snapshot("t");
  EXPECT_EQ(s.name, "t");
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 106u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[3], 1u);
  EXPECT_EQ(s.buckets[7], 1u);
}

TEST(ObsHistogram, SnapshotDeltaIsolatesAWindow) {
  obs::Histogram h;
  h.Observe(10);
  obs::HistogramSnapshot before = h.Snapshot();
  h.Observe(20);
  h.Observe(30);
  obs::HistogramSnapshot delta = h.Snapshot() - before;
  EXPECT_EQ(delta.count, 2u);
  EXPECT_EQ(delta.sum, 50u);
  std::uint64_t total = 0;
  for (std::uint64_t b : delta.buckets) total += b;
  EXPECT_EQ(total, 2u);
}

// ---------------------------------------------------------------------------
// Registry: interning, stability, concurrent snapshot.

TEST(ObsRegistry, InternsByNameWithStableAddresses) {
  obs::Counter& a = obs::MetricsRegistry::Global().GetCounter("obs_test.c1");
  obs::Counter& b = obs::MetricsRegistry::Global().GetCounter("obs_test.c1");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  b.Increment();
  EXPECT_EQ(a.value(), 4u);

  obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge("obs_test.g1");
  g.Set(-7);
  EXPECT_EQ(g.value(), -7);

  bool saw_counter = false;
  bool saw_gauge = false;
  obs::MetricsRegistry::Snapshot snap = obs::MetricsRegistry::Global().Snap();
  for (const auto& [name, v] : snap.counters) {
    if (name == "obs_test.c1") {
      saw_counter = true;
      EXPECT_EQ(v, 4u);
    }
  }
  for (const auto& [name, v] : snap.gauges) {
    if (name == "obs_test.g1") {
      saw_gauge = true;
      EXPECT_EQ(v, -7);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
}

TEST(ObsRegistry, SnapshotUnderConcurrentWritersIsClean) {
  // The fast path is relaxed atomics; snapshots read the same atomics. This
  // is primarily a TSan test: writers hammer one histogram and one counter
  // while the main thread snapshots in a loop. Afterwards, totals are exact.
  obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("obs_test.concurrent_ns");
  obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("obs_test.concurrent_c");
  const std::uint64_t before_count = h.Snapshot().count;
  const std::uint64_t before_c = c.value();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&go, &h, &c, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(static_cast<std::uint64_t>(t * kPerThread + i));
        c.Increment();
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (int i = 0; i < 50; ++i) {
    obs::HistogramSnapshot mid = h.Snapshot();
    std::uint64_t bucket_total = 0;
    for (std::uint64_t b : mid.buckets) bucket_total += b;
    // count and the bucket array may trail each other by in-flight
    // observations but neither can exceed the true total.
    EXPECT_LE(mid.count, before_count + kThreads * kPerThread);
    EXPECT_LE(bucket_total, before_count + kThreads * kPerThread);
  }
  for (std::thread& w : writers) w.join();

  obs::HistogramSnapshot final_snap = h.Snapshot();
  EXPECT_EQ(final_snap.count, before_count + kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : final_snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, before_count + kThreads * kPerThread);
  EXPECT_EQ(c.value(), before_c + kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// Span mechanics.

TEST(ObsTraceDeath, UnbalancedSpanCloseAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        // Closing a span depth that was never opened is a hard check
        // failure: it means attribution is corrupt, not recoverable.
        obs::internal::EndSpanDepth();
      },
      "span close without a matching open");
}

TEST(ObsTrace, NoCollectorMeansNoEvents) {
  ASSERT_EQ(obs::CurrentTraceCollector(), nullptr)
      << "another test leaked an installed collector";
  {
    obs::Span span("obs_test.noop");
    span.AddArg("k", 1);
  }
  // Nothing observable happened; installing a collector afterwards starts
  // from zero events.
  obs::TraceCollector tc;
  EXPECT_EQ(tc.event_count(), 0u);
}

TEST(ObsTrace, SpansNestAndRecordDepthAndArgs) {
  obs::TraceCollector tc;
  obs::ScopedTraceCollector install(tc);
  {
    obs::Span outer("obs_test.outer");
    outer.AddArg("items", 42);
    { obs::Span inner("obs_test.inner"); }
  }
  std::vector<obs::TraceEvent> evs = tc.events_since(0);
  ASSERT_EQ(evs.size(), 2u);
  // Spans close inner-first.
  EXPECT_STREQ(evs[0].name, "obs_test.inner");
  EXPECT_STREQ(evs[1].name, "obs_test.outer");
  EXPECT_EQ(evs[0].depth, 1);
  EXPECT_EQ(evs[1].depth, 0);
  EXPECT_GE(evs[1].dur_ns, evs[0].dur_ns);
  ASSERT_EQ(evs[1].args.size(), 1u);
  EXPECT_STREQ(evs[1].args[0].first, "items");
  EXPECT_EQ(evs[1].args[0].second, 42u);
}

TEST(ObsTrace, ExclusiveDeltasTelescopeToInclusiveTotal) {
  // A fake counter driven by the test: the root span's inclusive delta must
  // equal the sum of all self deltas (root self + children selves).
  std::uint64_t fake = 0;
  obs::TraceCollector tc;
  obs::ScopedTraceCollector install(tc);
  tc.set_sampler([&fake] {
    obs::CounterSample s;
    s.work = fake;
    return s;
  });
  {
    obs::Span root("obs_test.root");
    fake += 5;  // root self
    {
      obs::Span child("obs_test.child");
      fake += 7;  // child self
    }
    fake += 11;  // root self again
  }
  tc.clear_sampler();

  std::vector<obs::TraceEvent> evs = tc.events_since(0);
  ASSERT_EQ(evs.size(), 2u);
  const obs::TraceEvent& child = evs[0];
  const obs::TraceEvent& root = evs[1];
  ASSERT_TRUE(child.has_delta);
  ASSERT_TRUE(root.has_delta);
  EXPECT_EQ(child.self.work, 7u);
  EXPECT_EQ(child.inclusive.work, 7u);
  EXPECT_EQ(root.self.work, 16u);  // 5 + 11
  EXPECT_EQ(root.inclusive.work, 23u);
  EXPECT_EQ(root.self.work + child.self.work, root.inclusive.work);
}

TEST(ObsTrace, OffOwnerThreadSpansRecordWallOnly) {
  obs::TraceCollector tc;
  obs::ScopedTraceCollector install(tc);
  std::uint64_t fake = 0;
  tc.set_sampler([&fake] {
    obs::CounterSample s;
    s.work = fake;
    return s;
  });
  std::thread worker([&fake] {
    obs::SetCurrentThreadName("obs-test-worker");
    obs::Span span("obs_test.worker_span");
    fake += 3;  // sampler must NOT run for this span (not the owner thread)
  });
  worker.join();
  tc.clear_sampler();

  std::vector<obs::TraceEvent> evs = tc.events_since(0);
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_FALSE(evs[0].has_delta);
  EXPECT_NE(evs[0].tid, tc.TidForCurrentThread());
}

// ---------------------------------------------------------------------------
// Chrome JSON emission.

TEST(ObsTrace, WriteChromeJsonEmitsWellFormedCompleteEvents) {
  obs::TraceCollector tc;
  {
    obs::ScopedTraceCollector install(tc);
    obs::Span span("obs_test.json");
    span.AddArg("n", 9);
  }
  std::ostringstream os;
  tc.WriteChromeJson(os);
  const std::string doc = os.str();

  // Structural spot-checks (the CI smoke step runs a full JSON parse; here
  // we pin the Chrome-trace essentials without depending on a parser).
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"obs_test.json\""), std::string::npos);
  EXPECT_NE(doc.find("\"n\":9"), std::string::npos);
  EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
  // Balanced braces/brackets — cheap well-formedness proxy.
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
            std::count(doc.begin(), doc.end(), '}'));
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '['),
            std::count(doc.begin(), doc.end(), ']'));
}

// ---------------------------------------------------------------------------
// Build info.

TEST(ObsBuildInfo, ReportsCompilerAndStandard) {
  const obs::BuildInfo& bi = obs::GetBuildInfo();
  EXPECT_FALSE(bi.compiler.empty());
  EXPECT_GE(bi.cplusplus, 202002L);  // the build requires C++20
}

// ---------------------------------------------------------------------------
// The tentpole contract: tracing is bit-invisible. Full matrix.

struct Cell {
  std::string algo;
  em::StorageKind storage;
  em::ScanMode scan_mode;
  std::size_t threads;
};

class ObsInvarianceMatrix : public ::testing::TestWithParam<Cell> {};

query::QueryResult RunOnce(const Cell& c, const std::vector<graph::Edge>& raw,
                           bool traced, std::uint64_t* trace_events) {
  query::LoadedGraph lg =
      *query::LoadedGraph::FromEdges(TestConfig(c.storage), raw);
  query::Query q;
  q.kind = query::QueryKind::kEnumerate;
  q.algo = c.algo;
  q.scan_mode = c.scan_mode;
  q.threads = c.threads;

  if (!traced) return *lg.Run(q);
  obs::TraceCollector tc;
  obs::ScopedTraceCollector install(tc);
  query::QueryResult r = *lg.Run(q);
  if (trace_events != nullptr) *trace_events = tc.event_count();
  return r;
}

TEST_P(ObsInvarianceMatrix, TracedRunIsBitIdenticalToUntraced) {
  const Cell& c = GetParam();
  const std::vector<graph::Edge> raw = FixtureEdges();
  std::uint64_t events = 0;
  query::QueryResult plain = RunOnce(c, raw, /*traced=*/false, nullptr);
  query::QueryResult traced = RunOnce(c, raw, /*traced=*/true, &events);

  EXPECT_EQ(traced.triangles, plain.triangles);
  EXPECT_EQ(traced.list, plain.list) << "emission order drifted under trace";
  EXPECT_EQ(traced.io.block_reads, plain.io.block_reads);
  EXPECT_EQ(traced.io.block_writes, plain.io.block_writes);
  EXPECT_EQ(traced.io.cache_hits, plain.io.cache_hits);
  EXPECT_EQ(traced.work, plain.work);
  EXPECT_EQ(traced.seed_used, plain.seed_used);
  EXPECT_EQ(traced.device_peak_words, plain.device_peak_words);

  // The traced run actually traced (phases populated, untraced stayed empty).
  EXPECT_GT(events, 0u);
  EXPECT_FALSE(traced.phases.empty());
  EXPECT_TRUE(plain.phases.empty());
  EXPECT_TRUE(plain.histogram_deltas.empty());
}

std::vector<Cell> AllCells() {
  std::vector<Cell> cells;
  for (const core::AlgorithmInfo& a : core::AllAlgorithms()) {
    for (em::StorageKind storage :
         {em::StorageKind::kMemory, em::StorageKind::kFile,
          em::StorageKind::kMmap}) {
      for (em::ScanMode mode :
           {em::ScanMode::kBuffered, em::ScanMode::kElementwise}) {
        for (std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
          cells.push_back(Cell{a.name, storage, mode, threads});
        }
      }
    }
  }
  return cells;
}

std::string CellName(const ::testing::TestParamInfo<Cell>& info) {
  const Cell& c = info.param;
  std::string name = c.algo;
  std::replace(name.begin(), name.end(), '-', '_');
  switch (c.storage) {
    case em::StorageKind::kMemory: name += "_memory"; break;
    case em::StorageKind::kFile: name += "_file"; break;
    case em::StorageKind::kMmap: name += "_mmap"; break;
  }
  name +=
      c.scan_mode == em::ScanMode::kElementwise ? "_elementwise" : "_buffered";
  name += "_t" + std::to_string(c.threads);
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithmsBackendsModes, ObsInvarianceMatrix,
                         ::testing::ValuesIn(AllCells()), CellName);

// ---------------------------------------------------------------------------
// Attribution: per-phase self deltas sum to the query's totals.

TEST(ObsAttribution, PhaseSelfDeltasSumToQueryTotals) {
  // A bigger graph than the matrix fixture: mgt must need several chunk
  // passes so the acceptance bar of >= 5 I/O-carrying spans is meaningful.
  const std::vector<graph::Edge> raw =
      graph::Rmat(10, 4000, 0.45, 0.22, 0.22, 17);
  query::LoadedGraph lg =
      *query::LoadedGraph::FromEdges(TestConfig(em::StorageKind::kFile), raw);
  obs::TraceCollector tc;
  obs::ScopedTraceCollector install(tc);

  query::Query q;
  q.algo = "mgt";
  query::QueryResult r = *lg.Run(q);
  ASSERT_GT(r.io.block_reads, 0u);
  ASSERT_FALSE(r.phases.empty());

  std::uint64_t br = 0, bw = 0, hits = 0, work = 0, spans = 0;
  for (const query::PhaseStat& p : r.phases) {
    br += p.self.block_reads;
    bw += p.self.block_writes;
    hits += p.self.cache_hits;
    work += p.self.work;
    spans += p.spans;
  }
  EXPECT_EQ(br, r.io.block_reads);
  EXPECT_EQ(bw, r.io.block_writes);
  EXPECT_EQ(hits, r.io.cache_hits);
  EXPECT_EQ(work, r.work);
  // The acceptance bar: at least 5 sampled spans carried nonzero I/O.
  std::uint64_t io_spans = 0;
  for (const obs::TraceEvent& ev : tc.events_since(0)) {
    if (ev.has_delta && (ev.self.block_reads > 0 || ev.self.block_writes > 0)) {
      ++io_spans;
    }
  }
  EXPECT_GE(io_spans, 5u);

  // The file backend's query did real preads: its syscall histogram window
  // is nonempty and consistent with the telemetry counter.
  bool saw_read_hist = false;
  for (const obs::HistogramSnapshot& h : r.histogram_deltas) {
    if (h.name == obs::metric_names::kFileReadNs) {
      saw_read_hist = true;
      EXPECT_EQ(h.count, r.telemetry.read_calls);
      EXPECT_GT(h.sum, 0u);
    }
  }
  EXPECT_TRUE(saw_read_hist);
}

TEST(ObsAttribution, SecondQueryWindowExcludesTheFirst) {
  // Histogram deltas are windowed per query: query 2's window counts only
  // its own syscalls even though the process-wide histogram accumulated
  // query 1's as well.
  const std::vector<graph::Edge> raw = FixtureEdges();
  query::LoadedGraph lg =
      *query::LoadedGraph::FromEdges(TestConfig(em::StorageKind::kFile), raw);
  obs::TraceCollector tc;
  obs::ScopedTraceCollector install(tc);

  query::Query q;
  q.algo = "mgt";
  query::QueryResult r1 = *lg.Run(q);
  query::QueryResult r2 = *lg.Run(q);
  ASSERT_GT(r1.telemetry.read_calls, 0u);
  for (const obs::HistogramSnapshot& h : r2.histogram_deltas) {
    if (h.name == obs::metric_names::kFileReadNs) {
      EXPECT_EQ(h.count, r2.telemetry.read_calls)
          << "window leaked the first query's syscalls";
    }
  }
}

}  // namespace
}  // namespace trienum
