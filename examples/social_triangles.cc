// Social-network analysis (§1 cites community detection and friendship-
// structure studies as triangle applications): compute per-vertex triangle
// counts and the global clustering coefficient of a skewed R-MAT "social"
// graph, streaming triangles straight out of the enumeration — no triangle
// list is ever materialized, which is the point of *enumeration* vs listing.
//
//   $ ./social_triangles
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/algorithms.h"
#include "core/sink.h"
#include "graph/generators.h"
#include "graph/normalize.h"

int main() {
  using namespace trienum;

  em::EmConfig cfg;
  cfg.memory_words = 1 << 11;
  cfg.block_words = 32;
  em::Context ctx(cfg);

  std::vector<graph::Edge> raw = graph::Rmat(13, 20000, 0.5, 0.2, 0.2, 99);
  graph::EmGraph g = graph::BuildEmGraph(ctx, raw);
  std::printf("social graph: %zu edges, %u vertices\n", g.num_edges(),
              g.num_vertices);

  // Stream triangles into per-vertex counters (one word per vertex — this
  // is the application pipeline, outside the enumeration's I/O accounting).
  std::vector<std::uint64_t> tri_count(g.num_vertices, 0);
  std::uint64_t total = 0;
  core::CallbackSink sink([&](graph::VertexId a, graph::VertexId b,
                              graph::VertexId c) {
    ++tri_count[a];
    ++tri_count[b];
    ++tri_count[c];
    ++total;
  });

  ctx.cache().Reset();
  core::FindAlgorithm("ps-cache-aware")->run(ctx, g, sink);
  ctx.cache().FlushAll();
  std::printf("triangles: %llu   (enumeration cost: %llu block I/Os)\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(ctx.cache().stats().total_ios()));

  // Global clustering coefficient: 3*triangles / wedges.
  ctx.cache().set_counting(false);
  double wedges = 0;
  for (graph::VertexId v = 0; v < g.num_vertices; ++v) {
    double d = g.degrees.Get(v);
    wedges += d * (d - 1) / 2.0;
  }
  std::printf("global clustering coefficient: %.4f\n",
              wedges > 0 ? 3.0 * static_cast<double>(total) / wedges : 0.0);

  // Top triangle-carrying vertices (the "community cores").
  std::vector<graph::VertexId> order(g.num_vertices);
  for (graph::VertexId v = 0; v < g.num_vertices; ++v) order[v] = v;
  std::sort(order.begin(), order.end(),
            [&](graph::VertexId x, graph::VertexId y) {
              return tri_count[x] > tri_count[y];
            });
  std::printf("top community cores (vertex: triangles, degree):\n");
  for (int i = 0; i < 5 && i < static_cast<int>(order.size()); ++i) {
    graph::VertexId v = order[i];
    std::printf("  v%u: %llu triangles, degree %u\n", v,
                static_cast<unsigned long long>(tri_count[v]),
                g.degrees.Get(v));
  }
  return 0;
}
