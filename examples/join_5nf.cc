// The paper's motivating database example (§1): a Sells(salesperson, brand,
// productType) table in 5th normal form is stored as three binary
// projections; reconstructing it is the natural join R |x| S |x| T, which is
// exactly triangle enumeration on the union of the three bipartite graphs.
//
//   $ ./join_5nf
#include <algorithm>
#include <cstdio>

#include "common/rng.h"
#include "join/relation.h"
#include "join/triangle_join.h"

int main() {
  using namespace trienum;

  // Build a product-form Sells table: each salesperson sells every product
  // in her brand-set x type-set rectangle ("she sells all available
  // products in B x T", §1).
  SplitMix64 rng(5);
  std::vector<join::Tuple3> sells;
  const int people = 40, brands = 12, types = 9;
  for (std::uint32_t p = 0; p < people; ++p) {
    std::vector<std::uint32_t> bset, tset;
    for (std::uint32_t b = 0; b < brands; ++b) {
      if (rng.NextDouble() < 0.35) bset.push_back(100 + b);
    }
    for (std::uint32_t t = 0; t < types; ++t) {
      if (rng.NextDouble() < 0.45) tset.push_back(200 + t);
    }
    for (std::uint32_t b : bset) {
      for (std::uint32_t t : tset) sells.push_back(join::Tuple3{p, b, t});
    }
  }
  std::printf("Sells has %zu tuples\n", sells.size());
  std::printf("5NF-decomposable: %s\n",
              join::IsFifthNormalFormDecomposable(sells) ? "yes" : "no");

  // Decompose into the three binary projections (the 5NF schema).
  join::Decomposition d = join::Decompose(sells);
  std::printf("projections: %s-%s %zu rows, %s-%s %zu rows, %s-%s %zu rows\n",
              d.ab.lhs.c_str(), d.ab.rhs.c_str(), d.ab.rows.size(),
              d.bc.lhs.c_str(), d.bc.rhs.c_str(), d.bc.rows.size(),
              d.ac.lhs.c_str(), d.ac.rhs.c_str(), d.ac.rows.size());

  // Reconstruct Sells via triangle enumeration, with two different engines.
  for (const char* algo : {"ps-cache-aware", "bnl"}) {
    em::EmConfig cfg;
    cfg.memory_words = 1 << 10;
    cfg.block_words = 32;
    em::Context ctx(cfg);
    join::TriangleJoinStats stats;
    auto result = join::TriangleJoin(ctx, d, algo, &stats);
    if (!result.ok()) {
      std::printf("%s failed: %s\n", algo, result.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "%-16s -> %llu tuples, graph %zu edges / %u vertices, %llu I/Os\n",
        algo, static_cast<unsigned long long>(stats.output_tuples),
        stats.graph_edges, stats.graph_vertices,
        static_cast<unsigned long long>(stats.io.total_ios()));

    // Verify losslessness of the decomposition (the 5NF property).
    std::vector<join::Tuple3> canon = sells;
    std::sort(canon.begin(), canon.end());
    canon.erase(std::unique(canon.begin(), canon.end()), canon.end());
    std::printf("                 join reconstructs Sells exactly: %s\n",
                (*result == canon) ? "yes" : "NO (bug!)");
  }
  return 0;
}
