// Quickstart: enumerate the triangles of a small graph with the paper's
// cache-oblivious algorithm and inspect the I/O accounting.
//
//   $ ./quickstart
//
// Walks through the library's three core steps:
//   1. build a simulated memory hierarchy (Context),
//   2. normalize an edge list into the canonical on-disk form (EmGraph),
//   3. run an enumeration algorithm against a TriangleSink.
#include <cstdio>

#include "core/cache_oblivious.h"
#include "core/lower_bound.h"
#include "core/sink.h"
#include "graph/generators.h"
#include "graph/normalize.h"

int main() {
  using namespace trienum;

  // A memory hierarchy: M = 4096 words of internal memory, blocks of B = 64
  // words. The cache-oblivious algorithm never reads these values — they
  // only parameterize the LRU cache simulator that *measures* it.
  em::EmConfig cfg;
  cfg.memory_words = 4096;
  cfg.block_words = 64;
  cfg.seed = 2014;  // PODS vintage
  em::Context ctx(cfg);

  // A graph: K_12 plus a sparse random periphery. Any edge list works; ids
  // are arbitrary and duplicates/self-loops are cleaned up by normalization.
  std::vector<graph::Edge> raw = graph::CliquePlusPath(12, 50);
  std::vector<graph::Edge> extra = graph::Gnm(62, 120, 7);
  raw.insert(raw.end(), extra.begin(), extra.end());

  graph::EmGraph g = graph::BuildEmGraph(ctx, raw);
  std::printf("graph: %zu edges over %u vertices after normalization\n",
              g.num_edges(), g.num_vertices);

  // Enumerate. A sink receives each triangle exactly once, at a moment when
  // its three edges are in (simulated) internal memory; here we collect them.
  ctx.cache().Reset();
  core::CollectingSink sink;
  core::EnumerateCacheOblivious(ctx, g, sink);
  ctx.cache().FlushAll();

  const em::IoStats& io = ctx.cache().stats();
  std::printf("triangles: %zu\n", sink.triangles().size());
  std::printf("block I/Os: %llu (%llu reads + %llu writes)\n",
              static_cast<unsigned long long>(io.total_ios()),
              static_cast<unsigned long long>(io.block_reads),
              static_cast<unsigned long long>(io.block_writes));
  std::printf("Theorem 3 lower bound for this output: %.0f I/Os\n",
              core::IoLowerBound(sink.triangles().size(), cfg.memory_words,
                                 cfg.block_words));

  std::printf("first few triangles (normalized ids):\n");
  for (std::size_t i = 0; i < sink.triangles().size() && i < 5; ++i) {
    const graph::Triangle& t = sink.triangles()[i];
    std::printf("  {%u, %u, %u}\n", t.a, t.b, t.c);
  }
  return 0;
}
