// Interactive I/O explorer: run any registered algorithm on a chosen graph
// family under a chosen memory hierarchy and compare the measured block
// I/Os against the paper's bounds.
//
//   $ ./io_explorer [algorithm] [family] [log2_E] [log2_M] [log2_B]
//   $ ./io_explorer ps-cache-oblivious rmat 14 10 4
//   $ ./io_explorer list            # show algorithms and families
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/algorithms.h"
#include "core/cache_aware.h"
#include "core/lower_bound.h"
#include "core/mgt.h"
#include "core/sink.h"
#include "graph/generators.h"
#include "graph/normalize.h"

namespace {

using namespace trienum;

std::vector<graph::Edge> MakeFamily(const std::string& family, std::size_t e) {
  using namespace trienum::graph;
  if (family == "gnm") return Gnm(static_cast<VertexId>(e / 4), e, 17);
  if (family == "rmat") return Rmat(20, e, 0.45, 0.22, 0.22, 18);
  if (family == "clique") {
    VertexId k = 3;
    while (static_cast<std::size_t>(k) * (k + 1) / 2 <= e) ++k;
    return Clique(k);
  }
  if (family == "tripartite") {
    VertexId p = 1;
    while (static_cast<std::size_t>(3) * (p + 1) * (p + 1) <= e) ++p;
    return CompleteTripartite(p, p, p);
  }
  if (family == "bipartite") {
    return BipartiteRandom(static_cast<VertexId>(e / 4),
                           static_cast<VertexId>(e / 4), e, 19);
  }
  std::fprintf(stderr, "unknown family '%s'\n", family.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  std::string algo = argc > 1 ? argv[1] : "ps-cache-oblivious";
  if (algo == "list" || algo == "--help") {
    std::printf("algorithms:\n");
    for (const core::AlgorithmInfo& a : core::AllAlgorithms()) {
      std::printf("  %-20s %s\n", a.name.c_str(), a.description.c_str());
    }
    std::printf("families: gnm rmat clique tripartite bipartite\n");
    return 0;
  }
  std::string family = argc > 2 ? argv[2] : "gnm";
  int log_e = argc > 3 ? std::atoi(argv[3]) : 14;
  int log_m = argc > 4 ? std::atoi(argv[4]) : 10;
  int log_b = argc > 5 ? std::atoi(argv[5]) : 4;

  const core::AlgorithmInfo* info = core::FindAlgorithm(algo);
  if (info == nullptr) {
    std::fprintf(stderr, "unknown algorithm '%s' (try: %s list)\n",
                 algo.c_str(), argv[0]);
    return 1;
  }

  em::EmConfig cfg;
  cfg.memory_words = std::size_t{1} << log_m;
  cfg.block_words = std::size_t{1} << log_b;
  em::Context ctx(cfg);
  ctx.cache().set_counting(false);
  graph::EmGraph g =
      graph::BuildEmGraph(ctx, MakeFamily(family, std::size_t{1} << log_e));
  ctx.cache().set_counting(true);
  ctx.cache().Reset();
  ctx.ResetWork();

  core::ChecksumSink sink;
  info->run(ctx, g, sink);
  ctx.cache().FlushAll();

  const em::IoStats& io = ctx.cache().stats();
  double e = static_cast<double>(g.num_edges());
  std::printf("%s on %s: E=%zu, V=%u, M=2^%d words, B=2^%d words\n",
              algo.c_str(), family.c_str(), g.num_edges(), g.num_vertices,
              log_m, log_b);
  std::printf("triangles        : %llu (checksum %016llx)\n",
              static_cast<unsigned long long>(sink.count()),
              static_cast<unsigned long long>(sink.checksum()));
  std::printf("block I/Os       : %llu (%llu reads, %llu writes)\n",
              static_cast<unsigned long long>(io.total_ios()),
              static_cast<unsigned long long>(io.block_reads),
              static_cast<unsigned long long>(io.block_writes));
  std::printf("internal work    : %llu ops\n",
              static_cast<unsigned long long>(ctx.work()));
  std::printf("E^1.5/(sqrt(M)B) : %.0f   (measured/bound = %.1f)\n",
              core::PaghSilvestriIoBound(g.num_edges(), cfg.memory_words,
                                         cfg.block_words),
              io.total_ios() / core::PaghSilvestriIoBound(
                                   g.num_edges(), cfg.memory_words,
                                   cfg.block_words));
  std::printf("MGT model E^2/MB : %.0f\n",
              core::MgtIoBound(g.num_edges(), cfg.memory_words,
                               cfg.block_words));
  std::printf("Thm 3 lower bound: %.0f\n",
              core::IoLowerBound(sink.count(), cfg.memory_words,
                                 cfg.block_words));
  std::printf("scan floor E/B   : %.0f\n", e / static_cast<double>(cfg.block_words));
  return 0;
}
